"""Causal critical-path extraction over traced runs.

The tracer (PR 1) records *everything*; this module answers the paper's
actual question (Sections 3–6, Table 1): which of those events
**determined** the simulated elapsed time, and which were hidden behind
overlap, imbalance slack or prefetch?

The causal DAG over the per-rank event streams has three edge families:

* **program order** within a rank — consecutive events, with untraced
  clock time between them attributed to local compute;
* **collective rendezvous** — every participant's entry precedes every
  participant's exit (``Comm._exchange`` synchronises the clocks to the
  slowest entrant, exactly), so the path through a collective always
  runs through the *last-arriving* rank;
* **message edges** — the k-th ``recv`` on a ``(src, dst, tag)`` channel
  depends on the k-th ``send``/``isend`` on it (mailboxes are FIFO per
  channel).

Disk-queue ordering under the PR 5 demand-preemption model is carried by
the ``prefetch_wait`` events the disk emits at consumption time: they
hold the *residual* wait after demand I/O slipped the in-flight
prefetch, so overlap hidden behind compute can never land on the path
(the issue-time ``prefetch`` slice, whose end time goes stale when the
queue is preempted, is excluded from the DAG entirely).

:func:`build_critical_path` walks the DAG backwards from the last event
of the slowest rank and tiles ``[0, elapsed]`` with contiguous,
causally-ordered :class:`PathSegment`\\ s, each attributed to one of
:data:`CATEGORIES`. The tiling is exact by construction, which pins the
tentpole invariant — **critical-path length == the slowest rank's
simulated elapsed time** — for every fault-free run; any inconsistency
in the event streams (overlapping events, a sync point after an exit, a
jump forward in time) raises :class:`CritPathError` instead of silently
producing a plausible-looking path.

Collective time on the path is split into Table-1 **startup** vs
**bandwidth** with the closed forms of :func:`repro.dnc.cost` — the
startup fraction of the op's cost row evaluated at the measured payload
— so the per-category blame agrees with the model the what-if engine
(:mod:`repro.obs.whatif`) re-prices counterfactuals with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.network import NetworkModel
from repro.cluster.trace import _P2P_OPS, TraceEvent, Tracer
from repro.dnc.cost import collective_cost, startup_cost

__all__ = [
    "CATEGORIES",
    "CritPathError",
    "CriticalPath",
    "PathSegment",
    "build_critical_path",
    "collective_groups",
    "critpath_alerts",
    "match_p2p",
    "record_critpath_metrics",
]

#: attribution buckets, in render order
CATEGORIES = (
    "compute",
    "disk_read",
    "disk_write",
    "comm_startup",
    "comm_bandwidth",
    "blocked_wait",
    "fault_retry",
)

_DISK_CATEGORY = {
    "read": "disk_read",
    "write": "disk_write",
    "prefetch_wait": "disk_read",
    "retry": "fault_retry",
}


class CritPathError(ValueError):
    """The event streams are not a consistent causal DAG (overlapping
    events, a sync point after an exit, or a jump forward in time)."""


@dataclass(frozen=True)
class PathSegment:
    """One contiguous stretch of the critical path on one rank."""

    rank: int
    t_start: float
    t_end: float
    category: str  # one of CATEGORIES
    op: str  # primitive name, or "compute" for untraced gaps
    level: int | None = None
    phase: str | None = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration": self.duration,
            "category": self.category,
            "op": self.op,
            "level": self.level,
            "phase": self.phase,
        }


@dataclass
class CriticalPath:
    """The extracted path plus the per-rank aggregates the what-if
    engine needs (:mod:`repro.obs.whatif`)."""

    segments: list[PathSegment]  # chronological, tiling [0, elapsed]
    elapsed: float  # == sum of segment durations, exactly
    end_rank: int  # rank whose final event ends the run
    rank_end: list[float] = field(default_factory=list)  # last event end
    rank_blocked: list[float] = field(default_factory=list)  # sync slack
    n_cross_rank: int = 0  # rank hops along the path

    @property
    def length(self) -> float:
        return sum(s.duration for s in self.segments)

    def by_category(self) -> dict[str, float]:
        out = {c: 0.0 for c in CATEGORIES}
        for s in self.segments:
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return out

    def by_level(self) -> dict[int | None, float]:
        """Path seconds per frontier level (None = outside the loop)."""
        out: dict[int | None, float] = {}
        for s in self.segments:
            out[s.level] = out.get(s.level, 0.0) + s.duration
        return out

    def by_level_category(self) -> dict[int | None, dict[str, float]]:
        out: dict[int | None, dict[str, float]] = {}
        for s in self.segments:
            cell = out.setdefault(s.level, {})
            cell[s.category] = cell.get(s.category, 0.0) + s.duration
        return out

    def rank_share(self) -> dict[int, float]:
        """Path seconds spent on each rank (straggler attribution)."""
        out: dict[int, float] = {}
        for s in self.segments:
            out[s.rank] = out.get(s.rank, 0.0) + s.duration
        return out

    def share(self, category: str) -> float:
        total = self.length
        return self.by_category().get(category, 0.0) / total if total else 0.0

    def dominant(self) -> tuple[str, float]:
        """(category, share) of the largest attribution bucket."""
        cats = self.by_category()
        cat = max(CATEGORIES, key=lambda c: cats.get(c, 0.0))
        return cat, self.share(cat)

    def crossings(self) -> list[tuple[PathSegment, PathSegment]]:
        """Consecutive segment pairs where the path changes rank."""
        out = []
        for a, b in zip(self.segments, self.segments[1:]):
            if a.rank != b.rank:
                out.append((a, b))
        return out

    def to_dict(self) -> dict:
        cats = self.by_category()
        total = self.length
        dom_cat, dom_share = self.dominant()
        return {
            "elapsed_seconds": self.elapsed,
            "path_seconds": total,
            "end_rank": self.end_rank,
            "n_segments": len(self.segments),
            "n_cross_rank": self.n_cross_rank,
            "dominant_category": dom_cat,
            "dominant_share": dom_share,
            "by_category": {
                c: {"seconds": cats.get(c, 0.0), "share": self.share(c)}
                for c in CATEGORIES
            },
            "by_level": {
                ("outside" if lv is None else str(lv)): v
                for lv, v in sorted(
                    self.by_level().items(),
                    key=lambda kv: (kv[0] is None, kv[0] or 0),
                )
            },
            "rank_share": {str(r): v for r, v in sorted(self.rank_share().items())},
        }


# -- DAG construction helpers -------------------------------------------------


def _timeline(tracer: Tracer, attempt: int) -> list[TraceEvent]:
    """The rank's causally-ordered clock-occupying events: comm calls
    except the outer ``split`` (its nested traced allgather covers the
    same span) and disk accesses except the issue-time ``prefetch``
    (io-queue domain; its end time goes stale under demand preemption —
    ``prefetch_wait`` carries the consumption point instead)."""
    out = []
    for e in tracer.events:
        if e.attempt != attempt:
            continue
        if e.kind == "comm" and e.op != "split":
            out.append(e)
        elif e.kind == "disk" and e.op != "prefetch":
            out.append(e)
    for a, b in zip(out, out[1:]):
        if b.t_end < a.t_end:
            raise CritPathError(
                f"rank {tracer.rank}: event {b.op!r} ends at {b.t_end} "
                f"before preceding {a.op!r} at {a.t_end}"
            )
    return out


def collective_groups(
    timelines: list[list[TraceEvent]],
) -> dict[int, list[tuple[int, TraceEvent]]]:
    """Map ``id(event) -> [(rank, event), ...]`` joining each collective
    invocation across its participants, aligned by ``(comm, seq)`` —
    the SPMD schedule contract makes the per-communicator sequence
    index identical on every participating rank."""
    groups: dict[tuple[str, int], list[tuple[int, TraceEvent]]] = {}
    for rank, evs in enumerate(timelines):
        seq: dict[str, int] = {}
        for e in evs:
            if e.kind != "comm" or e.op in _P2P_OPS:
                continue
            label = e.comm or "world"
            k = seq.get(label, 0)
            seq[label] = k + 1
            groups.setdefault((label, k), []).append((rank, e))
    by_event: dict[int, list[tuple[int, TraceEvent]]] = {}
    for group in groups.values():
        ops = {e.op for _, e in group}
        if len(ops) != 1:
            raise CritPathError(
                f"collective group mixes ops {sorted(ops)} — schedules "
                "do not match across ranks"
            )
        for _, e in group:
            by_event[id(e)] = group
    return by_event


def match_p2p(
    timelines: list[list[TraceEvent]],
) -> dict[int, tuple[int, TraceEvent] | None]:
    """Map ``id(recv event) -> (sender rank, send event)`` pairing the
    k-th receive on each ``(src, dst, tag)`` channel with the k-th
    send/isend on it (per-channel mailboxes are FIFO)."""
    sends: dict[tuple[int, int, int], list[tuple[int, TraceEvent]]] = {}
    recvs: dict[tuple[int, int, int], list[TraceEvent]] = {}
    for rank, evs in enumerate(timelines):
        for e in evs:
            if e.kind != "comm" or e.peer is None:
                continue
            if e.op in ("send", "isend"):
                sends.setdefault((rank, e.peer, e.tag or 0), []).append((rank, e))
            elif e.op == "recv":
                recvs.setdefault((e.peer, rank, e.tag or 0), []).append(e)
    out: dict[int, tuple[int, TraceEvent] | None] = {}
    for channel, rlist in recvs.items():
        slist = sends.get(channel, [])
        for k, e in enumerate(rlist):
            out[id(e)] = slist[k] if k < len(slist) else None
    return out


def _collective_m(op: str, group: list[tuple[int, TraceEvent]], e: TraceEvent) -> float:
    """Invert the traced byte counters back to the Table-1 row's ``m``,
    exactly as the communicator derived it (mirrors the health
    monitor's drift accounting)."""
    p = len(group)
    if op == "bcast" or op == "scatter":
        return float(max(ev.received for _, ev in group))
    if op == "gather":
        return float(max(ev.sent for _, ev in group))
    if op in ("allgather", "vote"):
        mx = max(ev.sent for _, ev in group)
        return mx / (p - 1) if p > 1 else 0.0
    if op == "barrier":
        return 0.0
    return float(e.sent)  # combines, scans: the rank's reduced vector


def _startup_fraction(
    network: NetworkModel,
    e: TraceEvent,
    group: list[tuple[int, TraceEvent]] | None,
) -> float:
    """Fraction of the event's Table-1 cost row that is startup
    (latency) rather than payload bandwidth. Evaluated on the *measured*
    payload, so the split is exact whenever drift is 1.0 (which the
    health monitor pins for fault-free runs). Robust to clock-rate
    scaling (stragglers) and to uniformly scaled cost models: a common
    factor on alpha and beta cancels out of the fraction."""
    if e.op in _P2P_OPS:
        total = network.p2p(float(e.sent or e.received))
        startup = network.alpha
    else:
        p = len(group) if group else 1
        if e.op == "alltoall":
            total = collective_cost(
                network, e.op, p=p,
                out_bytes=float(e.sent), in_bytes=float(e.received),
            )
        else:
            m = _collective_m(e.op, group or [], e)
            total = collective_cost(network, e.op, p=p, m=m)
        startup = startup_cost(network, e.op, p=p)
    if total <= 0.0:
        return 1.0
    return min(1.0, startup / total)


# -- the backward walk --------------------------------------------------------


def build_critical_path(
    tracers: list[Tracer],
    network: NetworkModel | None = None,
    *,
    elapsed: float | None = None,
) -> CriticalPath:
    """Extract the critical path of one traced run.

    ``network`` is only used to *split* comm segments into startup vs
    bandwidth (the fraction is invariant under uniform cost-model
    scaling, so the default :class:`NetworkModel` is exact for the
    ``scaled_models`` harness). ``elapsed`` — pass the run's simulated
    elapsed time (``PCloudsResult.elapsed``) to account trailing
    untraced local work after the last event; the invariant
    ``path.length == elapsed`` then holds exactly for fault-free runs.

    Multi-attempt (recovered) runs are walked over the final attempt
    only — clocks reset between attempts, so earlier attempts live in a
    different time domain.
    """
    network = network or NetworkModel()
    if not tracers:
        raise CritPathError("no tracers to walk")
    attempt = max((e.attempt for t in tracers for e in t.events), default=0)
    timelines = [_timeline(t, attempt) for t in tracers]
    groups = collective_groups(timelines)
    p2p = match_p2p(timelines)

    rank_end = [evs[-1].t_end if evs else 0.0 for evs in timelines]
    rank_blocked = [
        sum(e.blocked for e in evs if e.kind == "comm") for evs in timelines
    ]
    T = max(rank_end)
    end_rank = rank_end.index(T)
    if elapsed is not None:
        if elapsed < T - 1e-9 * max(1.0, T):
            raise CritPathError(
                f"run elapsed {elapsed} is before the last traced event "
                f"at {T} — stale events in the stream"
            )
        T = max(T, elapsed)

    rev: list[PathSegment] = []  # built back-to-front
    hops = 0

    def emit(rank, lo, hi, category, op, level, phase):
        if hi > lo:
            rev.append(PathSegment(rank, lo, hi, category, op, level, phase))

    r, t = end_rank, T
    if elapsed is not None and T > rank_end[end_rank]:
        emit(r, rank_end[end_rank], T, "compute", "compute", None, None)
        t = rank_end[end_rank]
    idx = [len(evs) - 1 for evs in timelines]
    budget = 4 * sum(len(evs) for evs in timelines) + 8 * len(timelines) + 16
    while True:
        budget -= 1
        if budget < 0:  # pragma: no cover - defensive
            raise CritPathError("walk did not terminate (cyclic jumps?)")
        evs = timelines[r]
        i = idx[r]
        while i >= 0 and evs[i].t_end > t:
            i -= 1
        idx[r] = i
        if i < 0:
            emit(r, 0.0, t, "compute", "compute", None, None)
            break
        e = evs[i]
        if e.t_end < t:
            # untraced clock time after e: local compute (incl. the
            # drain of isend requests, charged without a trace event)
            emit(r, e.t_end, t, "compute", "compute", e.level, e.phase)
            t = e.t_end
            continue
        # e.t_end == t: e is the event whose completion the path leaves
        if e.kind == "disk":
            emit(r, e.t_start, t, _DISK_CATEGORY.get(e.op, "disk_read"),
                 e.op, e.level, e.phase)
            t = e.t_start
            idx[r] = i - 1
            continue
        if e.op == "recv":
            idx[r] = i - 1
            matched = p2p.get(id(e))
            if e.blocked > 0.0 and matched is not None:
                src, se = matched
                if se.t_start > t:
                    raise CritPathError(
                        f"recv at {t} matched a send starting later "
                        f"({se.t_start}) on rank {src}"
                    )
                frac = _startup_fraction(network, se, None)
                cut = se.t_start + frac * (t - se.t_start)
                emit(src, cut, t, "comm_bandwidth", se.op, se.level, se.phase)
                emit(src, se.t_start, cut, "comm_startup", se.op,
                     se.level, se.phase)
                if src != r:
                    hops += 1
                r, t = src, se.t_start
            elif e.blocked > 0.0:
                # no matching send in the final attempt: genuine wait
                emit(r, e.t_start, t, "blocked_wait", e.op, e.level, e.phase)
                t = e.t_start
            else:
                t = e.t_start  # message was already here: instant
            continue
        if e.op in ("send", "isend"):
            idx[r] = i - 1
            if e.op == "isend":
                # only the startup is charged at issue; the transfer
                # flies while the sender computes
                emit(r, e.t_start, t, "comm_startup", e.op, e.level, e.phase)
            else:
                frac = _startup_fraction(network, e, None)
                cut = e.t_start + frac * (t - e.t_start)
                emit(r, cut, t, "comm_bandwidth", e.op, e.level, e.phase)
                emit(r, e.t_start, cut, "comm_startup", e.op, e.level, e.phase)
            t = e.t_start
            continue
        # collective: the exit at t depends on every participant's
        # entry; the charged interval runs from the rendezvous point
        # (== the last entry, clocks advance_to it exactly)
        group = groups[id(e)]
        t_sync = max(ev.t_start for _, ev in group)
        if t_sync > t:
            raise CritPathError(
                f"collective {e.op!r} on rank {r} exits at {t} before "
                f"its rendezvous at {t_sync}"
            )
        frac = _startup_fraction(network, e, group)
        cut = t_sync + frac * (t - t_sync)
        emit(r, cut, t, "comm_bandwidth", e.op, e.level, e.phase)
        emit(r, t_sync, cut, "comm_startup", e.op, e.level, e.phase)
        idx[r] = i - 1
        last = min(rk for rk, ev in group if ev.t_start == t_sync)
        if last != r:
            hops += 1
            r = last
        t = t_sync

    rev.reverse()
    # the tiling is contiguous by construction; verify anyway
    pos = 0.0
    for s in rev:
        if abs(s.t_start - pos) > 1e-9 * max(1.0, T):
            raise CritPathError(
                f"path tiling gap at {pos} (segment starts {s.t_start})"
            )
        pos = s.t_end
    return CriticalPath(
        segments=rev,
        elapsed=T,
        end_rank=end_rank,
        rank_end=rank_end,
        rank_blocked=rank_blocked,
        n_cross_rank=hops,
    )


# -- surfacing: metrics gauges and health alerts ------------------------------


def record_critpath_metrics(registry, path: CriticalPath) -> None:
    """Publish the ``repro_critpath_*`` gauge family onto a
    :class:`~repro.obs.registry.MetricsRegistry` (rank-0 shard; the path
    is a run-wide, replicated quantity)."""
    from .registry import Gauge

    registry.register(
        Gauge(
            "repro_critpath_seconds",
            "Critical-path seconds by attribution category",
            ("category",),
        ),
        Gauge(
            "repro_critpath_share",
            "Fraction of the critical path by attribution category",
            ("category",),
        ),
        Gauge(
            "repro_critpath_elapsed_seconds",
            "Critical-path length (== simulated elapsed, fault-free)",
        ),
        Gauge(
            "repro_critpath_cross_rank_total",
            "Rank hops along the critical path",
        ),
    )
    shard = registry.shard(0)
    cats = path.by_category()
    total = path.length
    for cat in CATEGORIES:
        v = cats.get(cat, 0.0)
        shard.set("repro_critpath_seconds", (cat,), v)
        shard.set("repro_critpath_share", (cat,), v / total if total else 0.0)
    shard.set("repro_critpath_elapsed_seconds", (), total)
    shard.set("repro_critpath_cross_rank_total", (), float(path.n_cross_rank))


def critpath_alerts(path: CriticalPath, thresholds=None) -> list:
    """Health alerts for the path: one ``critpath_share`` alert when a
    single category holds more than
    :attr:`~repro.obs.health.HealthThresholds.critpath_dominant_share`
    of it (the run is X-bound; the what-if engine bounds the payoff of
    fixing X)."""
    from .health import OUTSIDE_LEVEL, HealthAlert, HealthThresholds

    th = thresholds or HealthThresholds()
    if path.length <= 0.0:
        return []
    cat, share = path.dominant()
    if share <= th.critpath_dominant_share:
        return []
    return [
        HealthAlert(
            "critpath_share",
            OUTSIDE_LEVEL,
            cat,
            share,
            th.critpath_dominant_share,
            f"critical path is {share:.1%} {cat} "
            f"(> {th.critpath_dominant_share:.0%}): the run is "
            f"{cat}-bound — see `repro critpath --what-if` for the "
            "bounded payoff of relieving it",
        )
    ]
