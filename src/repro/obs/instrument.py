"""Hooks that feed the metrics registry and the health monitor.

:func:`attach_metrics` wraps each rank context the way
:func:`repro.cluster.trace.attach_tracers` does, but writes structured
*metrics* instead of an event log:

* the communicator is wrapped in :class:`_MeteredComm`, which meters
  every primitive from :class:`~repro.cluster.stats.RankStats` deltas
  (bytes, charged transfer time, sync idle) — the byte accounting is
  therefore exact, never a payload re-walk;
* the disk's and phase timer's single ``tracer`` sink slots are teed
  (:class:`_Tee`), so metrics compose with tracing and fault injection;
* the recorder registers itself as a context *observer*
  (``ctx.observers``) to receive the driver's frontier notifications
  (``begin_level`` / ``end_level`` / ``on_survival`` / ...).

Composition order matters: attach tracers first, then the fault
injector, then metrics — the metered wrapper must be outermost so its
deltas include injected comm perturbations, and it delegates through
``__getattr__`` (like ``_FaultyComm``) so the inner wrappers keep
working.

Nothing in this module advances a simulated clock, touches an rng, or
alters a payload: a metered run is bit-identical (tree *and* elapsed
time) to an unmetered one.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.machine import RankContext

from .health import OUTSIDE_LEVEL, CollectiveSample, HealthMonitor, LevelSummary
from .registry import (
    DEFAULT_BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RankShard,
)

__all__ = ["MetricsRecorder", "attach_metrics", "PHASE_LABELS"]

#: driver phase-timer names mapped onto the exported ``phase`` label
PHASE_LABELS = {
    "stats": "stats_exchange",
    "alive": "alive_eval",
    "partition": "partition",
    "small_nodes": "small_task",
}

_COLLECTIVES = (
    "barrier",
    "bcast",
    "scatter",
    "gather",
    "allgather",
    "vote",
    "reduce",
    "allreduce",
    "allreduce_minloc",
    "allreduce_minloc_many",
    "scan",
    "alltoall",
    "split",
)
_P2P = ("send", "recv", "isend")

#: metered ops that never join the drift pool: ``split`` because its
#: deltas include the nested allgather it performs internally, p2p
#: because sends and receives legitimately differ across ranks
_NO_DRIFT = ("split",)


def _register_metrics(registry: MetricsRegistry) -> None:
    registry.register(
        Counter(
            "repro_collective_calls_total",
            "Collective invocations",
            ("rank", "comm", "op", "level", "phase"),
        ),
        Counter(
            "repro_collective_bytes_total",
            "Bytes moved by collectives",
            ("rank", "op", "direction"),
        ),
        Counter(
            "repro_collective_busy_seconds_total",
            "Charged transfer seconds (duration minus sync idle)",
            ("rank", "op", "level", "phase"),
        ),
        Counter(
            "repro_collective_idle_seconds_total",
            "Seconds waiting for slower participants",
            ("rank", "op", "level", "phase"),
        ),
        Histogram(
            "repro_collective_latency_seconds",
            "Wall simulated duration of collective calls",
            ("op",),
        ),
        Histogram(
            "repro_collective_payload_bytes",
            "Per-call payload (max of sent/received)",
            ("op",),
            buckets=DEFAULT_BYTES_BUCKETS,
        ),
        Counter(
            "repro_p2p_messages_total", "Point-to-point calls", ("rank", "op")
        ),
        Counter(
            "repro_p2p_bytes_total",
            "Point-to-point bytes",
            ("rank", "direction"),
        ),
        Counter(
            "repro_disk_calls_total",
            "Local-disk accesses (op=read|write|retry)",
            ("rank", "op", "level", "phase"),
        ),
        Counter(
            "repro_disk_bytes_total",
            "Local-disk bytes (transfers only, retries excluded)",
            ("rank", "op", "level", "phase"),
        ),
        Counter(
            "repro_disk_seconds_total",
            "Charged disk seconds (incl. retry backoff)",
            ("rank", "op", "level", "phase"),
        ),
        Counter("repro_io_retries_total", "Transient-error retries", ("rank",)),
        Counter(
            "repro_ooc_cache_hits_total",
            "Buffer-pool chunk reads served from memory",
            ("rank",),
        ),
        Counter(
            "repro_ooc_cache_misses_total",
            "Buffer-pool chunk reads that went to disk",
            ("rank",),
        ),
        Counter(
            "repro_ooc_cache_evictions_total",
            "Buffer-pool LRU evictions",
            ("rank",),
        ),
        Counter(
            "repro_ooc_prefetch_total",
            "Overlapped prefetches by outcome (issued|useful|wasted)",
            ("rank", "outcome"),
        ),
        Counter(
            "repro_ooc_overlap_saved_seconds_total",
            "Disk seconds hidden behind compute by prefetch",
            ("rank",),
        ),
        Counter(
            "repro_crc_failures_total",
            "Chunk CRC verification failures",
            ("rank",),
        ),
        Counter(
            "repro_faults_total", "Injected faults fired", ("rank", "kind")
        ),
        Counter(
            "repro_phase_seconds_total",
            "Simulated seconds per closed driver phase",
            ("rank", "phase"),
        ),
        Counter(
            "repro_level_busy_seconds_total",
            "Busy seconds per frontier level",
            ("rank", "level"),
        ),
        Counter(
            "repro_level_io_bytes_total",
            "Disk bytes per frontier level",
            ("rank", "level"),
        ),
        Counter(
            "repro_exchange_total",
            "Statistics exchanges by strategy",
            ("rank", "strategy"),
        ),
        Counter(
            "repro_exchange_payload_bytes_total",
            "Interval/class statistics bytes this rank shipped into the "
            "stats-exchange collectives, by strategy",
            ("rank", "strategy"),
        ),
        Counter(
            "repro_exchange_elected_attributes_total",
            "Attributes elected by top-k voting (exchange='voting')",
            ("rank",),
        ),
        Counter("repro_attempts_total", "Fit attempts (1 + restarts)", ("rank",)),
        Gauge("repro_frontier_nodes", "Frontier width at a level", ("level",)),
        Gauge(
            "repro_frontier_live_bytes",
            "Local live dataset bytes at level start",
            ("rank", "level"),
        ),
        Gauge(
            "repro_alive_survival_ratio",
            "Mean fraction of records in alive intervals at a level",
            ("level",),
        ),
        Gauge(
            "repro_small_tasks_owned",
            "Small tasks assigned to this rank (LPT)",
            ("rank",),
        ),
        Gauge(
            "repro_small_task_cost_load",
            "Estimated build cost assigned to this rank",
            ("rank",),
        ),
        Gauge(
            "repro_rank_seconds",
            "Final per-rank time split",
            ("rank", "kind"),
        ),
        Gauge(
            "repro_rank_bytes", "Final per-rank byte counters", ("rank", "kind")
        ),
        Gauge("repro_run_elapsed_seconds", "Simulated elapsed time of the fit"),
    )


class MetricsRecorder:
    """Per-rank metrics front-end.

    Owns the rank's :class:`~repro.obs.registry.RankShard`, tracks the
    open frontier level, logs drift samples for the health monitor, and
    acts as the disk/timer event sink and the context observer. Only the
    owning rank thread calls into it (the monitor handles its own
    locking), so there is no synchronisation here.
    """

    def __init__(
        self,
        ctx: RankContext,
        shard: RankShard,
        monitor: HealthMonitor | None = None,
    ) -> None:
        self.ctx = ctx
        self.shard = shard
        self.monitor = monitor
        self.rank_label = str(ctx.rank)
        self._timer = ctx.timer  # hot-path alias (one hop, not two)
        self.attempt = 0
        self.level: int | None = None
        # (op/label, level, open phase-timer name) -> prebuilt label
        # tuples; invalidated implicitly because the key changes with
        # the level/phase. Keeps the hot paths at one tuple build + one
        # dict hit instead of five tuple builds + string mapping.
        self._coll_keys: dict[tuple, tuple] = {}
        self._disk_keys: dict[tuple, tuple] = {}
        self._seq: dict[str, int] = {}
        self._level_samples: list[CollectiveSample] = []
        self._outside_samples: list[CollectiveSample] = []
        self._level_meta: tuple[int, int] = (0, 0)  # (n_frontier, live_bytes)
        self._busy0 = 0.0
        self._idle0 = 0.0
        self._io0 = 0
        self._cache0 = (0, 0)  # (hits, misses) at level start
        self._overlap0 = 0.0

    # -- label helpers -------------------------------------------------------
    def _phase(self, default: str) -> str:
        open_phase = self.ctx.timer.current
        if open_phase is None:
            return default
        return PHASE_LABELS.get(open_phase, open_phase)

    def _level_label(self) -> str:
        return "-" if self.level is None else str(self.level)

    # -- communicator events (called by _MeteredComm) ------------------------
    def record_collective(
        self,
        label: str,
        op: str,
        sent: int,
        received: int,
        busy: float,
        idle: float,
        duration: float,
        p: int,
    ) -> None:
        shard = self.shard
        ck = (label, op, self.level, self._timer.current)
        keys = self._coll_keys.get(ck)
        if keys is None:
            rank, lvl, phase = (
                self.rank_label,
                self._level_label(),
                self._phase("collective"),
            )
            keys = self._coll_keys[ck] = (
                (rank, label, op, lvl, phase),  # calls
                (rank, op, lvl, phase),  # busy / idle seconds
                (rank, op, "sent"),
                (rank, op, "received"),
                (op,),  # histograms
            )
        shard.inc("repro_collective_calls_total", keys[0])
        if sent:
            shard.inc("repro_collective_bytes_total", keys[2], sent)
        if received:
            shard.inc("repro_collective_bytes_total", keys[3], received)
        shard.inc("repro_collective_busy_seconds_total", keys[1], busy)
        shard.inc("repro_collective_idle_seconds_total", keys[1], idle)
        shard.observe("repro_collective_latency_seconds", keys[4], duration)
        shard.observe("repro_collective_payload_bytes", keys[4], max(sent, received))
        seq = self._seq.get(label, 0)
        self._seq[label] = seq + 1
        if self.monitor is None or op in _NO_DRIFT:
            return
        if self.level is None:
            self._outside_samples.append(
                CollectiveSample(
                    label, seq, op, self.ctx.rank, OUTSIDE_LEVEL,
                    sent, received, busy, idle, duration, p,
                )
            )
        else:
            self._level_samples.append(
                CollectiveSample(
                    label, seq, op, self.ctx.rank, self.level,
                    sent, received, busy, idle, duration, p,
                )
            )

    def record_p2p(self, op: str, sent: int, received: int) -> None:
        rank = self.rank_label
        self.shard.inc("repro_p2p_messages_total", (rank, op))
        if sent:
            self.shard.inc("repro_p2p_bytes_total", (rank, "sent"), sent)
        if received:
            self.shard.inc("repro_p2p_bytes_total", (rank, "received"), received)

    # -- disk / timer sinks (teed behind the tracer slot) --------------------
    def record_disk(self, op: str, nbytes: int, t_start: float, t_end: float) -> None:
        # the highest-frequency hook (every chunk access); caches the
        # full counter keys and writes the shard's dict directly
        ck = (op, self.level, self._timer.current)
        key = self._disk_keys.get(ck)
        if key is None:
            labels = (self.rank_label, op, self._level_label(), self._phase("io"))
            key = self._disk_keys[ck] = (
                ("repro_disk_calls_total", labels),
                ("repro_disk_seconds_total", labels),
                ("repro_disk_bytes_total", labels),
            )
        counters = self.shard.counters
        k = key[0]
        counters[k] = counters.get(k, 0.0) + 1.0
        k = key[1]
        counters[k] = counters.get(k, 0.0) + (t_end - t_start)
        if op == "retry":
            self.shard.inc("repro_io_retries_total", (self.rank_label,))
        else:
            k = key[2]
            counters[k] = counters.get(k, 0.0) + nbytes

    def record_phase(self, name: str, t_start: float, t_end: float) -> None:
        phase = PHASE_LABELS.get(name, name)
        self.shard.inc(
            "repro_phase_seconds_total", (self.rank_label, phase), t_end - t_start
        )

    def record_fault(self, op: str, t: float) -> None:
        self.shard.inc("repro_faults_total", (self.rank_label, op))

    # -- driver notifications (via ctx.notify) -------------------------------
    def begin_attempt(self, attempt: int) -> None:
        """A (re)start of the fit program — discard any level left open
        by a crashed attempt so its samples cannot leak across."""
        self.attempt = attempt
        self.level = None
        self._level_samples = []
        self.shard.inc("repro_attempts_total", (self.rank_label,))

    def begin_level(self, level: int, n_frontier: int, live_bytes: int) -> None:
        stats = self.ctx.stats
        self.level = level
        self._level_meta = (n_frontier, int(live_bytes))
        self._level_samples = []
        self._busy0 = stats.busy_time()
        self._idle0 = stats.idle_time
        self._io0 = stats.bytes_read + stats.bytes_written
        pool = self.ctx.disk.pool
        if pool is not None:
            self._cache0 = (pool.stats.hits, pool.stats.misses)
        self._overlap0 = stats.io_overlap_saved
        self.shard.set(
            "repro_frontier_live_bytes",
            (self.rank_label, str(level)),
            float(live_bytes),
        )
        if self.ctx.rank == 0:
            self.shard.set("repro_frontier_nodes", (str(level),), float(n_frontier))

    def end_level(self) -> None:
        if self.level is None:
            return
        stats = self.ctx.stats
        busy = stats.busy_time() - self._busy0
        idle = stats.idle_time - self._idle0
        io_bytes = (stats.bytes_read + stats.bytes_written) - self._io0
        lvl = str(self.level)
        self.shard.inc(
            "repro_level_busy_seconds_total", (self.rank_label, lvl), busy
        )
        self.shard.inc(
            "repro_level_io_bytes_total", (self.rank_label, lvl), io_bytes
        )
        pool = self.ctx.disk.pool
        hits = misses = 0
        if pool is not None:
            hits = pool.stats.hits - self._cache0[0]
            misses = pool.stats.misses - self._cache0[1]
        summary = LevelSummary(
            rank=self.ctx.rank,
            attempt=self.attempt,
            level=self.level,
            busy=busy,
            idle=idle,
            io_bytes=io_bytes,
            live_bytes=self._level_meta[1],
            n_frontier=self._level_meta[0],
            samples=tuple(self._level_samples),
            cache_hits=hits,
            cache_misses=misses,
            overlap_saved=stats.io_overlap_saved - self._overlap0,
        )
        self.level = None
        self._level_samples = []
        if self.monitor is not None:
            self.monitor.publish(summary)

    def on_survival(self, level: int, ratios: list[float]) -> None:
        if self.ctx.rank == 0 and ratios:
            self.shard.set(
                "repro_alive_survival_ratio",
                (str(level),),
                sum(ratios) / len(ratios),
            )

    def on_small_assignment(self, load: float, owned: int) -> None:
        self.shard.set(
            "repro_small_tasks_owned", (self.rank_label,), float(owned)
        )
        self.shard.set(
            "repro_small_task_cost_load", (self.rank_label,), float(load)
        )

    def on_stats_exchange(self, strategy: str, n_nodes: int) -> None:
        self.shard.inc(
            "repro_exchange_total", (self.rank_label, strategy), float(n_nodes)
        )

    def on_exchange_payload(self, strategy: str, nbytes: int) -> None:
        self.shard.inc(
            "repro_exchange_payload_bytes_total",
            (self.rank_label, strategy),
            float(nbytes),
        )

    def on_vote_election(self, elected_sets: tuple) -> None:
        self.shard.inc(
            "repro_exchange_elected_attributes_total",
            (self.rank_label,),
            float(sum(len(names) for names in elected_sets)),
        )

    # -- end of run ----------------------------------------------------------
    def finalize(self) -> None:
        """Dump the rank's final counters; called once, after the run's
        threads have joined (the happens-before edge the registry merge
        relies on)."""
        stats = self.ctx.stats
        rank = self.rank_label
        for kind, v in (
            ("compute", stats.compute_time),
            ("io", stats.io_time),
            ("comm", stats.comm_time),
            ("idle", stats.idle_time),
        ):
            self.shard.set("repro_rank_seconds", (rank, kind), v)
        for kind, v in (
            ("read", stats.bytes_read),
            ("written", stats.bytes_written),
            ("sent", stats.bytes_sent),
            ("received", stats.bytes_received),
        ):
            self.shard.set("repro_rank_bytes", (rank, kind), float(v))
        if stats.crc_failures:
            self.shard.inc(
                "repro_crc_failures_total", (rank,), float(stats.crc_failures)
            )
        pool = self.ctx.disk.pool
        if pool is not None:
            ps = pool.stats
            self.shard.inc("repro_ooc_cache_hits_total", (rank,), float(ps.hits))
            self.shard.inc(
                "repro_ooc_cache_misses_total", (rank,), float(ps.misses)
            )
            self.shard.inc(
                "repro_ooc_cache_evictions_total", (rank,), float(ps.evictions)
            )
            for outcome, v in (
                ("issued", ps.prefetch_issued),
                ("useful", ps.prefetch_useful),
                ("wasted", ps.prefetch_wasted),
            ):
                if v:
                    self.shard.inc(
                        "repro_ooc_prefetch_total", (rank, outcome), float(v)
                    )
            if ps.overlap_saved_s:
                self.shard.inc(
                    "repro_ooc_overlap_saved_seconds_total",
                    (rank,),
                    ps.overlap_saved_s,
                )
        if self.monitor is not None and self._outside_samples:
            self.monitor.publish_outside(self._outside_samples)
            self._outside_samples = []


class _Tee:
    """Fan one event-sink slot (``LocalDisk.tracer`` / ``PhaseTimer.tracer``)
    out to both the previously attached sink and the recorder."""

    __slots__ = ("first", "second")

    def __init__(self, first: Any, second: Any) -> None:
        self.first = first
        self.second = second

    def record_disk(self, op: str, nbytes: int, t0: float, t1: float) -> None:
        self.first.record_disk(op, nbytes, t0, t1)
        self.second.record_disk(op, nbytes, t0, t1)

    def record_phase(self, name: str, t0: float, t1: float) -> None:
        self.first.record_phase(name, t0, t1)
        self.second.record_phase(name, t0, t1)

    def record_fault(self, op: str, t: float) -> None:
        self.first.record_fault(op, t)
        self.second.record_fault(op, t)

    def record_prefetch_wait(
        self, nbytes: int, t0: float, t1: float, saved: float
    ) -> None:
        # optional sink hook (only the event tracer implements it today)
        for sink in (self.first, self.second):
            fn = getattr(sink, "record_prefetch_wait", None)
            if fn is not None:
                fn(nbytes, t0, t1, saved)


class _MeteredComm:
    """Outermost communicator wrapper: meters every primitive from stats
    deltas and forwards to whatever is underneath (plain ``Comm``,
    ``_TracingComm``, ``_FaultyComm`` — delegation keeps them all live).
    """

    def __init__(self, inner: Any, recorder: MetricsRecorder, label: str = "world"):
        self._inner = inner
        self._recorder = recorder
        self._label = label
        self.rank = inner.rank
        self.size = inner.size

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._inner, name)
        if name in _COLLECTIVES:
            attr = self._metered_collective(name, attr)
        elif name in _P2P:
            attr = self._metered_p2p(name, attr)
        else:
            return attr
        # memoise the wrapper on the instance so normal attribute lookup
        # finds it next time: one closure per (comm, primitive), not one
        # per call
        setattr(self, name, attr)
        return attr

    def _metered_collective(self, op: str, fn: Any) -> Any:
        rec = self._recorder
        ctx = rec.ctx
        clock = ctx.clock
        stats = ctx.stats
        label = self._label

        def metered(*args: Any, **kwargs: Any):
            t0 = clock.now
            s0, r0 = stats.bytes_sent, stats.bytes_received
            c0, i0 = stats.comm_time, stats.idle_time
            out = fn(*args, **kwargs)
            if op == "split":
                members = ",".join(str(r) for r in out.parent_ranks)
                out = _MeteredComm(out, rec, label=f"{label}/{members}")
            rec.record_collective(
                label,
                op,
                stats.bytes_sent - s0,
                stats.bytes_received - r0,
                stats.comm_time - c0,
                stats.idle_time - i0,
                clock.now - t0,
                self.size,
            )
            return out

        return metered

    def _metered_p2p(self, op: str, fn: Any) -> Any:
        rec = self._recorder
        stats = rec.ctx.stats

        def metered(*args: Any, **kwargs: Any):
            s0, r0 = stats.bytes_sent, stats.bytes_received
            out = fn(*args, **kwargs)
            rec.record_p2p(op, stats.bytes_sent - s0, stats.bytes_received - r0)
            return out

        return metered


def attach_metrics(
    contexts: list[RankContext],
    registry: MetricsRegistry | None = None,
    monitor: HealthMonitor | None = None,
) -> tuple[MetricsRegistry, list[MetricsRecorder]]:
    """Instrument every rank context; returns the (shared) registry and
    the per-rank recorders.

    Attach *after* tracers and the fault injector so the metered wrapper
    is outermost. Existing disk/timer sinks are teed, not replaced.
    """
    if registry is None:
        registry = MetricsRegistry()
    _register_metrics(registry)
    recorders: list[MetricsRecorder] = []
    for ctx in contexts:
        rec = MetricsRecorder(ctx, registry.shard(ctx.rank), monitor)
        ctx.comm = _MeteredComm(ctx.comm, rec)
        ctx.disk.tracer = rec if ctx.disk.tracer is None else _Tee(ctx.disk.tracer, rec)
        ctx.timer.tracer = rec if ctx.timer.tracer is None else _Tee(ctx.timer.tracer, rec)
        ctx.observers.append(rec)
        recorders.append(rec)
    return registry, recorders
