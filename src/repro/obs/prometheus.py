"""Prometheus text exposition (version 0.0.4) for a merged registry.

Rendering is deterministic: families in name order, series in label
order, values printed with a stable decimal formatter. Histogram cells
are stored per-bucket in the shards and cumulated here, so the exported
``le`` series carry the standard Prometheus cumulative semantics.
"""

from __future__ import annotations

import math

from .registry import MetricsRegistry

__all__ = ["to_prometheus", "format_value"]


def format_value(v: float) -> str:
    """Stable decimal rendering: integers without a trailing ``.0``,
    everything else via ``repr`` (shortest round-trip form)."""
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    f = float(v)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labelstr(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """The merged registry in Prometheus text format."""
    merged = registry.merged()
    lines: list[str] = []
    for spec in registry.specs:
        samples = merged.get(spec.name, [])
        lines.append(f"# HELP {spec.name} {_escape(spec.help)}")
        lines.append(f"# TYPE {spec.name} {spec.kind}")
        for s in samples:
            if spec.kind == "histogram":
                cell = s.value
                cum = 0.0
                for i, edge in enumerate(spec.buckets):
                    cum += cell[i]
                    le = _labelstr(
                        spec.labelnames + ("le",),
                        s.labels + (format_value(edge),),
                    )
                    lines.append(
                        f"{spec.name}_bucket{le} {format_value(cum)}"
                    )
                base = _labelstr(spec.labelnames, s.labels)
                lines.append(f"{spec.name}_sum{base} {format_value(cell[-2])}")
                lines.append(f"{spec.name}_count{base} {format_value(cell[-1])}")
            else:
                base = _labelstr(spec.labelnames, s.labels)
                lines.append(f"{spec.name}{base} {format_value(s.value)}")
    return "\n".join(lines) + "\n"
