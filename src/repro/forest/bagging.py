"""Per-tree RNG streams and bootstrap bag derivation.

Every source of randomness in a forest fit descends from one
``np.random.SeedSequence`` spawn tree, so the bags — and therefore the
member trees — are **bit-reproducible regardless of regime, rank count
or scheduling order**:

* the forest seed's ``SeedSequence`` spawns one child per member tree
  (``spawn`` is order-deterministic and collision-resistant by
  construction);
* each tree's child spawns exactly two grandchildren: one seeding the
  bootstrap *mask*, one hashed down to the 32-bit ``fit_seed`` handed to
  the single-tree builder (whose own preprocessing derives per-rank
  streams from ``SeedSequence([fit_seed, 17, rank])``).

Bags are expressed as a **multiplicity vector over global row ids**
(how many times each original record appears in the bag), not as a
resampled copy of the data: the vector is a pure function of the mask
seed and ``n_total``, so every rank can replicate it locally and the bag
*multiset* is invariant to how the records happen to be laid out across
the machine — the property the bit-identity guarantee rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TreeSeeds", "spawn_tree_seeds", "bag_multiplicities"]


@dataclass(frozen=True)
class TreeSeeds:
    """The two independent streams owned by one member tree."""

    tree: int
    #: seeds the bootstrap draw (``bag_multiplicities``)
    mask: np.random.SeedSequence
    #: 32-bit seed for the single-tree builder's own RNG tree
    fit_seed: int


def spawn_tree_seeds(seed: int, n_trees: int) -> list[TreeSeeds]:
    """One :class:`TreeSeeds` per member, spawned from the forest seed.

    The spawn tree is fixed by ``(seed, n_trees ordering)`` alone —
    nothing about the machine, regime or schedule enters it — so tree
    ``t`` of ``PForest(seed=s)`` always sees the same streams.
    """
    if n_trees < 1:
        raise ValueError(f"n_trees must be >= 1, got {n_trees}")
    out: list[TreeSeeds] = []
    for t, child in enumerate(np.random.SeedSequence(seed).spawn(n_trees)):
        mask_ss, fit_ss = child.spawn(2)
        fit_seed = int(fit_ss.generate_state(1, dtype=np.uint32)[0])
        out.append(TreeSeeds(tree=t, mask=mask_ss, fit_seed=fit_seed))
    return out


def bag_multiplicities(
    mask: np.random.SeedSequence, n_total: int
) -> np.ndarray:
    """Bootstrap multiplicity of every global row in one tree's bag.

    ``n_total`` draws with replacement over ``[0, n_total)``; the
    returned int64 vector counts how often each row was drawn (sums to
    ``n_total``). Replicated identically on every rank from the tree's
    mask seed — no communication, no dependence on data layout.
    """
    if n_total < 1:
        raise ValueError(f"n_total must be >= 1, got {n_total}")
    draws = np.random.default_rng(mask).integers(0, n_total, size=n_total)
    return np.bincount(draws, minlength=n_total).astype(np.int64)
