"""Parallel out-of-core random forests over one distributed spool.

Bagging without data duplication (per-tree multiplicity vectors over
global row ids), wave scheduling across data-parallel / tree-parallel /
hybrid regimes picked by the extended Table-1 cost model, and a
cross-tree shared buffer pool that collapses the members' base-spool
scans. See :mod:`repro.forest.trainer` for the trainer,
:mod:`repro.forest.bagging` for the reproducible RNG spawn tree, and
:mod:`repro.forest.regimes` for the scheduler.
"""

from .bagging import TreeSeeds, bag_multiplicities, spawn_tree_seeds
from .regimes import REGIMES, candidate_groups, resolve_n_groups
from .trainer import ForestConfig, ForestResult, PForest

__all__ = [
    "ForestConfig",
    "ForestResult",
    "PForest",
    "REGIMES",
    "TreeSeeds",
    "bag_multiplicities",
    "candidate_groups",
    "resolve_n_groups",
    "spawn_tree_seeds",
]
