"""Parallelism regimes for the forest trainer.

A forest of ``B`` trees on ``p`` ranks can be scheduled anywhere on the
axis between two extremes:

* **data-parallel** (``n_groups = 1``): all ``p`` ranks cooperate on one
  tree at a time, ``B`` sequential waves — each tree sees the full
  machine, exactly the paper's single-tree regime;
* **tree-parallel** (``n_groups = min(B, p)``): the machine splits into
  disjoint rank groups (``Comm.split``), each fitting its own tree
  concurrently — trees see smaller machines but their base-spool scans
  overlap in time, which is what lets the shared buffer pool serve one
  tree's chunks to another;
* **hybrid**: any divisor in between.

``resolve_n_groups`` turns a regime name into a concrete group count;
``"auto"`` asks the extended Table-1 cost model
(:func:`repro.dnc.cost.choose_forest_regime`) to pick the cheapest
candidate for the given memory budget, pool size and ``B``.
"""

from __future__ import annotations

from repro.dnc.cost import DncCostModel, TreeShape, choose_forest_regime

__all__ = ["REGIMES", "candidate_groups", "resolve_n_groups"]

#: recognised scheduler regimes
REGIMES = ("data", "tree", "hybrid", "auto")


def candidate_groups(n_ranks: int, n_trees: int) -> list[int]:
    """Feasible group counts: divisors of ``n_ranks`` (groups must be
    equal-sized for ``Comm.split``'s contiguous blocks) no larger than
    ``n_trees`` (an idle group is never worth paying for) or ``n_ranks``.
    Always non-empty (1 divides everything)."""
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if n_trees < 1:
        raise ValueError(f"n_trees must be >= 1, got {n_trees}")
    return [
        g for g in range(1, min(n_trees, n_ranks) + 1) if n_ranks % g == 0
    ]


def resolve_n_groups(
    regime: str,
    *,
    n_ranks: int,
    n_trees: int,
    n_groups: int | None = None,
    model: DncCostModel | None = None,
    shape: TreeShape | None = None,
    memory_limit: int | None = None,
    pool_bytes: int | None = None,
    stats_nbytes: int | None = None,
) -> tuple[int, dict[int, float]]:
    """Concrete group count for a regime name.

    Returns ``(n_groups, costs)`` where ``costs`` maps every candidate
    group count to its modelled forest time — populated only for
    ``"auto"`` (the other regimes never consult the model). ``"hybrid"``
    honours an explicit ``n_groups`` (validated against the candidates)
    and otherwise takes the middle divisor.
    """
    if regime not in REGIMES:
        raise ValueError(f"unknown regime {regime!r}; expected one of {REGIMES}")
    cands = candidate_groups(n_ranks, n_trees)
    if regime == "data":
        return 1, {}
    if regime == "tree":
        return cands[-1], {}
    if regime == "hybrid":
        if n_groups is None:
            return cands[len(cands) // 2], {}
        if n_groups not in cands:
            raise ValueError(
                f"n_groups={n_groups} infeasible for p={n_ranks}, "
                f"B={n_trees}; candidates are {cands}"
            )
        return n_groups, {}
    if model is None or shape is None:
        raise ValueError(
            "regime='auto' needs the cluster cost model and a TreeShape"
        )
    return choose_forest_regime(
        model,
        shape,
        n_trees=n_trees,
        memory_limit=memory_limit,
        pool_bytes=pool_bytes,
        stats_nbytes=stats_nbytes,
    )
