"""Parallel out-of-core random-forest trainer over one distributed spool.

``B`` bagged trees are trained against a single
:class:`~repro.core.dataset.DistributedDataset` **without ever
duplicating the base data**: bags exist as per-tree multiplicity
vectors over global row ids (:mod:`repro.forest.bagging`), and each
tree's physical bag fragments are derived by streaming the base spool
once and routing replicated rows to the ranks of the group that owns
the tree. The base spool is only ever *read* — after the fit it is
intact and a second forest (or a single-tree fit) can run over it.

Scheduling follows :mod:`repro.forest.regimes`: the machine splits into
``n_groups`` equal rank groups (``Comm.split``), trees are assigned
round-robin (tree ``t`` belongs to group ``t % n_groups``) and the fit
proceeds in ``ceil(B / n_groups)`` waves. Within a wave every group runs
the *same* single-tree SPMD program
(:func:`repro.core.pclouds.fit_tree_program`) over its own
sub-communicator, wrapped in a :class:`~repro.cluster.machine.GroupContext`
whose phase prefix (``tree3/stats`` ...) keeps per-tree critical-path
blame separable.

The perf payload is the **cross-tree shared buffer pool**: all groups
on a rank share that rank's chunk cache, and a wave derives its bags
back-to-back — so with a warm pool, ``B`` near-identical scans of the
base spool collapse towards one cold scan plus cached re-reads.
:meth:`PForest.fit` accounts this exactly via the pool's
``cross_tree_hits`` counters (chunks admitted while another tree was
the pool's consumer, see ``BufferPool.begin_tree``).

**Bit-identity.** The CLOUDS-SSE tree is a function of its training
*multiset* only, and a bag's multiset is fixed by ``(forest seed, tree
index, n_total)`` alone — so every member is bit-identical to training
it standalone with its spawned ``fit_seed``, across regimes, rank
counts and exchange strategies (pinned in ``tests/test_forest.py``).

Crash recovery mirrors :class:`~repro.core.pclouds.PClouds`: the unit
is one *wave* — rank 0 checkpoints the JSON-encoded finished trees
after every wave, and a restarted attempt re-derives and re-fits only
the unfinished ones (recovered members stay bit-identical).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.errors import SpmdProgramError
from repro.cluster.machine import GroupContext, RankContext, SpmdRun
from repro.clouds.forest import DecisionForest
from repro.clouds.tree import (
    DecisionTree,
    TreeNode,
    _json_nesting_depth,
    _recursion_headroom,
    decode_node,
    encode_node,
)
from repro.core.checkpoint import CheckpointStore
from repro.core.config import PCloudsConfig
from repro.core.dataset import DistributedDataset
from repro.core.pclouds import fit_tree_program
from repro.data.schema import Schema
from repro.dnc.cost import DncCostModel, TreeShape
from repro.ooc.columnset import ColumnSet

from .bagging import TreeSeeds, bag_multiplicities, spawn_tree_seeds
from .regimes import REGIMES, resolve_n_groups

__all__ = ["ForestConfig", "ForestResult", "PForest"]


@dataclass(frozen=True)
class ForestConfig:
    """Configuration of one parallel forest fit."""

    #: number of bagged member trees (``B``)
    n_trees: int = 8
    #: the single-tree builder every member runs under
    pclouds: PCloudsConfig = field(default_factory=PCloudsConfig)
    #: scheduler regime: ``"data"`` (all ranks per tree, trees
    #: sequential), ``"tree"`` (max concurrent groups), ``"hybrid"``
    #: (explicit/middle group count), ``"auto"`` (cost-model pick)
    regime: str = "auto"
    #: explicit group count for ``regime="hybrid"`` (``None`` = middle
    #: divisor); ignored by the other regimes
    n_groups: int | None = None

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {self.n_trees}")
        if self.regime not in REGIMES:
            raise ValueError(
                f"unknown regime {self.regime!r}; expected one of {REGIMES}"
            )


@dataclass
class ForestResult:
    """Outcome of one parallel forest fit."""

    forest: DecisionForest
    elapsed: float  # simulated seconds (max over ranks, incl. failed attempts)
    run: SpmdRun
    n_groups: int
    n_waves: int
    #: candidate group count -> modelled cost (regime="auto" only)
    regime_costs: dict[int, float] = field(default_factory=dict)
    #: per tree: ``{"tree", "elapsed", "n_large", "n_small"}`` —
    #: ``elapsed`` is the max-over-ranks fit span (0.0 for members
    #: restored from a checkpoint rather than refitted)
    tree_stats: list[dict] = field(default_factory=list)
    #: run-wide buffer-pool deltas: ``hits`` / ``cross_tree_hits`` /
    #: ``cross_tree_hit_bytes`` / ``cross_tree_hit_rate`` plus the
    #: raw ``per_rank`` dicts
    cross_tree: dict = field(default_factory=dict)
    #: per-rank disk bytes read during the fit (base-spool scans + bag
    #: and builder traffic); the bench's read-reduction ratio compares
    #: these totals pool-on vs pool-off
    disk_read_bytes: list[int] = field(default_factory=list)
    tracers: list | None = None
    n_restarts: int = 0
    fault_events: list = field(default_factory=list)
    metrics: object | None = None
    health: object | None = None

    def metrics_snapshot(self) -> dict:
        """JSON-ready merged metrics (requires ``fit(metrics=True)``);
        includes the health roll-up under ``"health"``."""
        if self.metrics is None:
            raise ValueError("fit was not metered; pass metrics=True to fit()")
        snap = self.metrics.snapshot()
        if self.health is not None:
            snap["health"] = self.health.to_dict()
        return snap

    def phase_time(self, phase: str) -> float:
        """Max-over-ranks simulated time attributed to one phase (phases
        are per-tree prefixed: ``tree0/stats``, ``tree3/bag``, ...)."""
        return max((pt.get(phase, 0.0) for pt in self.run.phase_times), default=0.0)

    @property
    def phases(self) -> dict[str, float]:
        keys = {k for pt in self.run.phase_times for k in pt}
        return {k: self.phase_time(k) for k in sorted(keys)}

    def tree_phases(self, tree: int) -> dict[str, float]:
        """One member's slice of the phase profile (critical-path blame
        per tree): phase name without the ``tree<t>/`` prefix -> max-
        over-ranks seconds."""
        prefix = f"tree{tree}/"
        return {
            k[len(prefix):]: v
            for k, v in self.phases.items()
            if k.startswith(prefix)
        }


class PForest:
    """Bagged-forest trainer over a simulated shared-nothing machine."""

    def __init__(self, config: ForestConfig | None = None) -> None:
        self.config = config or ForestConfig()

    def fit(
        self,
        dataset: DistributedDataset,
        seed: int = 0,
        *,
        trace: bool = False,
        faults=None,
        recover: bool = False,
        max_restarts: int = 8,
        metrics: bool = False,
        health=None,
    ) -> ForestResult:
        """Train ``config.n_trees`` bagged trees over ``dataset``.

        Unlike :meth:`PClouds.fit` this does **not** consume the
        dataset's fragments — bags are derived spools and the base data
        survives the fit. The keyword surface mirrors ``PClouds.fit``:
        ``trace`` / ``faults`` / ``recover`` / ``metrics`` compose the
        same way (tracers, then injector, then the metered wrapper
        outermost), and metering never perturbs the simulated clocks,
        so a metered forest is bit-identical to an unmetered one.
        """
        cfg = self.config
        B = cfg.n_trees
        clouds = cfg.pclouds.clouds
        model = DncCostModel(
            network=dataset.cluster.network,
            disk=dataset.cluster.disk_model,
            compute=dataset.cluster.compute,
            n_ranks=dataset.n_ranks,
        )
        shape = TreeShape(
            n_records=max(1, dataset.n_total),
            leaf_records=max(1, clouds.min_node),
            record_nbytes=max(1, dataset.schema.row_nbytes()),
        )
        pool_budget = dataset.contexts[0].pool_budget
        # per-node statistics-exchange payload: every numeric attribute
        # ships q interval histograms over the classes (int64 counts) —
        # this is the communication that rank grouping eliminates, so the
        # regime model must see its real size, not a token summary
        stats_nbytes = (
            len(dataset.schema.names)
            * max(2, clouds.q_root)
            * dataset.schema.n_classes
            * 8
        )
        n_groups, regime_costs = resolve_n_groups(
            cfg.regime,
            n_ranks=dataset.n_ranks,
            n_trees=B,
            n_groups=cfg.n_groups,
            model=model,
            shape=shape,
            memory_limit=dataset.cluster.memory_limit,
            pool_bytes=pool_budget.limit if pool_budget is not None else None,
            stats_nbytes=stats_nbytes,
        )
        n_waves = math.ceil(B / n_groups)
        seeds = spawn_tree_seeds(seed, B)

        tracers = None
        if trace:
            from repro.cluster.trace import attach_tracers

            tracers = attach_tracers(dataset.contexts)
        injector = None
        if faults is not None:
            from repro.cluster.faults import FaultInjector

            injector = (
                faults
                if isinstance(faults, FaultInjector)
                else FaultInjector(faults, seed=seed)
            )
            injector.attach(dataset.contexts)
        registry = None
        recorders: list | None = None
        monitor = None
        if metrics:
            # metered wrapper outermost, exactly as in PClouds.fit
            from repro.obs.health import HealthMonitor
            from repro.obs.instrument import attach_metrics

            monitor = HealthMonitor(
                dataset.n_ranks, dataset.cluster.network, thresholds=health
            )
            registry, recorders = attach_metrics(
                dataset.contexts, monitor=monitor
            )

        # run-wide deltas: pool + disk counters already hold the initial
        # distribution's traffic, so snapshot before the fit
        pool_pre = [_pool_totals(c) for c in dataset.contexts]
        disk_pre = [int(c.stats.bytes_read) for c in dataset.contexts]

        store = CheckpointStore() if recover else None
        failed_time = 0.0
        restarts = 0
        while True:
            if injector is not None:
                injector.begin_attempt()
            for c in dataset.contexts:
                c.notify("begin_attempt", restarts)
            try:
                run = dataset.cluster.run(
                    _forest_program,
                    dataset.columnsets,
                    dataset.schema,
                    dataset.row_ids,
                    cfg,
                    dataset.n_total,
                    seeds,
                    n_groups,
                    store,
                    restarts > 0,
                    contexts=dataset.contexts,
                    reset_clocks=True,
                )
                break
            except SpmdProgramError:
                # time already burned by the dead attempt counts
                failed_time += max(c.clock.now for c in dataset.contexts)
                restarts += 1
                if not recover or restarts > max_restarts:
                    raise

        payload = run.results[0]
        trees = [
            _decode_tree(
                enc,
                dataset.schema,
                meta={
                    "builder": "pforest",
                    "tree": t,
                    "fit_seed": seeds[t].fit_seed,
                    "n_ranks": dataset.n_ranks,
                    "n_groups": n_groups,
                },
            )
            for t, enc in enumerate(payload["trees"])
        ]
        forest = DecisionForest(
            trees=trees,
            schema=dataset.schema,
            meta={
                "builder": "pforest",
                "n_trees": B,
                "n_groups": n_groups,
                "n_waves": n_waves,
                "regime": cfg.regime,
                "seed": seed,
            },
        )
        tree_stats = _merge_tree_stats(run, payload["trees"])

        per_rank = []
        for c, p0 in zip(dataset.contexts, pool_pre):
            p1 = _pool_totals(c)
            per_rank.append({k: p1[k] - p0[k] for k in p1})
        hits = sum(d["hits"] for d in per_rank)
        xhits = sum(d["cross_tree_hits"] for d in per_rank)
        cross_tree = {
            "hits": hits,
            "cross_tree_hits": xhits,
            "cross_tree_hit_bytes": sum(
                d["cross_tree_hit_bytes"] for d in per_rank
            ),
            "cross_tree_hit_rate": xhits / hits if hits else 0.0,
            "per_rank": per_rank,
        }
        disk_read = [
            int(c.stats.bytes_read) - b0
            for c, b0 in zip(dataset.contexts, disk_pre)
        ]

        health_report = None
        if recorders is not None:
            for rec in recorders:
                rec.finalize()
            registry.shard(0).set(
                "repro_run_elapsed_seconds", (), run.elapsed + failed_time
            )
            _record_forest_metrics(
                registry, B, n_groups, n_waves, tree_stats, cross_tree
            )
            monitor.evaluate_forest_cache(
                n_groups=n_groups,
                cross_tree_hits=xhits,
                hits=hits,
            )
            from repro.obs.health import HealthReport

            health_report = HealthReport.from_monitor(
                monitor,
                meta={
                    "n_ranks": dataset.n_ranks,
                    "seed": seed,
                    "n_trees": B,
                    "n_groups": n_groups,
                    "n_waves": n_waves,
                    "regime": cfg.regime,
                    "exchange": cfg.pclouds.exchange,
                    "restarts": restarts,
                    "elapsed_s": run.elapsed + failed_time,
                    "cross_tree_hit_rate": cross_tree["cross_tree_hit_rate"],
                },
            )
        return ForestResult(
            forest=forest,
            elapsed=run.elapsed + failed_time,
            run=run,
            n_groups=n_groups,
            n_waves=n_waves,
            regime_costs=regime_costs,
            tree_stats=tree_stats,
            cross_tree=cross_tree,
            disk_read_bytes=disk_read,
            tracers=tracers,
            n_restarts=restarts,
            fault_events=list(injector.events) if injector is not None else [],
            metrics=registry,
            health=health_report,
        )


# -- the SPMD program -------------------------------------------------------


def _forest_program(
    ctx: RankContext,
    columnsets: list[ColumnSet],
    schema: Schema,
    row_ids: list[np.ndarray] | None,
    config: ForestConfig,
    n_total: int,
    seeds: list[TreeSeeds],
    n_groups: int,
    store: CheckpointStore | None = None,
    resume: bool = False,
):
    """One rank's slice of the whole forest fit (wave-scheduled)."""
    base = columnsets[ctx.rank]
    B = len(seeds)
    p = ctx.size
    if p % n_groups != 0:
        raise ValueError(f"n_groups={n_groups} does not divide p={p}")
    gp = p // n_groups
    group_index = ctx.rank // gp
    pool = ctx.disk.pool

    if row_ids is not None:
        ids = row_ids[ctx.rank]
    else:
        # datasets assembled outside DistributedDataset.create don't
        # carry provenance; fall back to contiguous global ids in rank
        # order (bags stay valid multisets, just over renumbered rows)
        local = ctx.comm.allgather(int(base.nrows))
        off = sum(local[: ctx.rank])
        ids = np.arange(off, off + base.nrows, dtype=np.int64)

    # restore the finished-tree log (encoded payloads are flat JSON
    # strings, so the checkpoint blob never recurses per tree level)
    completed: dict[int, dict] = {}
    if store is not None and resume:
        state = None
        if ctx.rank == 0:
            loaded = store.load_latest(ctx.disk)
            state = loaded[1] if loaded is not None else {}
        completed = dict(ctx.comm.bcast(state) or {})

    group_comm = ctx.comm.split(group_index) if n_groups > 1 else ctx.comm
    # every rank sees the same round count so the derive alltoalls align
    n_rounds = int(ctx.comm.allreduce(base.labels_file.nchunks, op="max"))

    n_waves = math.ceil(B / n_groups)
    tree_stats: list[dict] = []
    for w in range(n_waves):
        wave = range(w * n_groups, min((w + 1) * n_groups, B))
        todo = [t for t in wave if t not in completed]
        if not todo:
            continue
        # derive this wave's bags back-to-back over the shared pool:
        # the first scan warms the cache, the rest hit it cross-tree
        frag = None
        for t in todo:
            if pool is not None:
                pool.begin_tree(t)
            got = _derive_bag(
                ctx, base, ids, schema, seeds[t], n_groups, gp, n_total, n_rounds
            )
            if got is not None:
                frag = got
        my_tree = w * n_groups + group_index
        out = None
        if my_tree in todo:
            if pool is not None:
                pool.begin_tree(my_tree)
            gctx = GroupContext(
                ctx, group_comm, phase_prefix=f"tree{my_tree}/"
            )
            t0 = ctx.clock.now
            res = fit_tree_program(
                gctx,
                frag,
                schema,
                config.pclouds,
                n_total,
                seeds[my_tree].fit_seed,
            )
            tree_stats.append(
                {"tree": my_tree, "t0": t0, "t1": ctx.clock.now}
            )
            if res is not None:  # group rank 0 assembled the tree
                out = {my_tree: _encode_tree_payload(res)}
        # wave barrier: replicate the finished trees (and sync clocks)
        for d in ctx.comm.allgather(out):
            if d:
                completed.update(d)
        if store is not None and ctx.rank == 0:
            store.save(ctx.disk, f"wave-{w}", dict(completed))
    if pool is not None:
        pool.begin_tree(None)
    payload = {"tree_stats": tree_stats}
    if ctx.rank == 0:
        payload["trees"] = [completed[t] for t in range(B)]
    return payload


def _derive_bag(
    ctx,
    base: ColumnSet,
    ids: np.ndarray,
    schema: Schema,
    seeds: TreeSeeds,
    n_groups: int,
    gp: int,
    n_total: int,
    n_rounds: int,
) -> ColumnSet | None:
    """Stream the base spool once and spool tree ``seeds.tree``'s bag.

    Every rank replicates the bag's multiplicity vector, expands its
    own batches, and — under tree parallelism — routes the expanded
    rows to the owning group's ranks by ``global_id % group_size``
    (an ``alltoall`` per aligned round). Returns the local bag fragment
    on ranks of the owning group, ``None`` elsewhere. The bag multiset
    is a pure function of ``(mask seed, n_total)``, never of the
    machine layout — the bit-identity invariant.
    """
    tree = seeds.tree
    owner_group = tree % n_groups
    mine = n_groups == 1 or (ctx.rank // gp) == owner_group
    ctx.timer.start(f"tree{tree}/bag")
    try:
        mult = bag_multiplicities(seeds.mask, n_total)
        ctx.charge_compute(ops=n_total)
        out = (
            ColumnSet(ctx.disk, schema, name=f"r{ctx.rank}-bag{tree}")
            if mine
            else None
        )
        names = [a.name for a in schema]
        it = base.iter_batches()
        off = 0
        for _ in range(n_rounds):
            try:
                batch, labels = next(it)
            except StopIteration:
                batch, labels = None, None
            take = None
            if batch is not None:
                k = len(labels)
                m = mult[ids[off : off + k]]
                off += k
                take = np.repeat(np.arange(k), m)
                ctx.charge_compute(ops=k + len(take))
            if n_groups == 1:
                if take is not None and len(take):
                    out.append_batch(
                        {n: batch[n][take] for n in names}, labels[take]
                    )
                continue
            parts: list = [None] * ctx.size
            if take is not None and len(take):
                # route expanded rows to the owner group's ranks, keyed
                # by global row id so the placement is layout-invariant
                d_of = np.repeat(ids[off - k : off], m) % gp
                for d in range(gp):
                    sel = take[d_of == d]
                    if len(sel) == 0:
                        continue
                    parts[owner_group * gp + d] = (
                        {n: batch[n][sel] for n in names},
                        labels[sel],
                    )
            got = ctx.comm.alltoall(parts)
            if out is not None:
                recv = [g for g in got if g is not None]
                if recv:
                    out.append_batch(
                        {
                            n: np.concatenate([g[0][n] for g in recv])
                            for n in names
                        },
                        np.concatenate([g[1] for g in recv]),
                    )
        return out
    finally:
        ctx.timer.stop()


# -- payload plumbing -------------------------------------------------------


def _tree_depth(root: TreeNode) -> int:
    depth = 0
    stack = [(root, 0)]
    while stack:
        node, d = stack.pop()
        depth = max(depth, d)
        if not node.is_leaf:
            stack.append((node.left, d + 1))
            stack.append((node.right, d + 1))
    return depth


def _encode_tree_payload(res: dict) -> dict:
    """Flatten one fitted tree into a checkpoint/gather-safe payload:
    the root becomes a single JSON string (depth-proportional recursion
    headroom for the C encoder), so pickling the payload never recurses
    per tree level."""
    root = res["root"]
    with _recursion_headroom(2 * _tree_depth(root) + 64):
        root_json = json.dumps(encode_node(root))
    return {
        "root_json": root_json,
        "n_large": res["n_large"],
        "n_small": res["n_small"],
        "survival": list(res["survival"]),
    }


def _decode_tree(payload: dict, schema: Schema, meta: dict) -> DecisionTree:
    text = payload["root_json"]
    try:
        data = json.loads(text)
    except RecursionError:
        with _recursion_headroom(2 * _json_nesting_depth(text) + 64):
            data = json.loads(text)
    return DecisionTree(root=decode_node(data), schema=schema, meta=meta)


# -- host-side accounting ---------------------------------------------------

_POOL_KEYS = (
    "hits",
    "misses",
    "hit_bytes",
    "evictions",
    "cross_tree_hits",
    "cross_tree_hit_bytes",
)


def _pool_totals(ctx: RankContext) -> dict[str, int]:
    pool = ctx.disk.pool
    if pool is None:
        return {k: 0 for k in _POOL_KEYS}
    return {k: int(getattr(pool.stats, k, 0)) for k in _POOL_KEYS}


def _merge_tree_stats(run: SpmdRun, encoded: list[dict]) -> list[dict]:
    spans: dict[int, tuple[float, float]] = {}
    for result in run.results:
        for rec in result["tree_stats"]:
            t = rec["tree"]
            t0, t1 = spans.get(t, (math.inf, -math.inf))
            spans[t] = (min(t0, rec["t0"]), max(t1, rec["t1"]))
    out = []
    for t, enc in enumerate(encoded):
        t0, t1 = spans.get(t, (0.0, 0.0))
        out.append(
            {
                "tree": t,
                "elapsed": max(0.0, t1 - t0),
                "n_large": enc["n_large"],
                "n_small": enc["n_small"],
            }
        )
    return out


def _record_forest_metrics(
    registry, n_trees, n_groups, n_waves, tree_stats, cross_tree
) -> None:
    """Register and record the ``repro_forest_*`` family post-run."""
    from repro.obs.registry import Counter, Gauge

    registry.register(
        Gauge("repro_forest_trees", "Member trees in the fitted forest"),
        Gauge(
            "repro_forest_groups", "Concurrent rank groups (parallelism regime)"
        ),
        Gauge("repro_forest_waves", "Scheduling waves (ceil(trees / groups))"),
        Gauge(
            "repro_forest_tree_elapsed_seconds",
            "Max-over-ranks simulated seconds fitting one member",
            ("tree",),
        ),
        Counter(
            "repro_forest_cross_tree_hits_total",
            "Buffer-pool hits served across a tree boundary",
            ("rank",),
        ),
        Counter(
            "repro_forest_cross_tree_hit_bytes_total",
            "Bytes of cross-tree buffer-pool hits",
            ("rank",),
        ),
        Gauge(
            "repro_forest_cross_tree_hit_rate",
            "Share of pool hits that crossed a tree boundary",
        ),
    )
    shard = registry.shard(0)
    shard.set("repro_forest_trees", (), n_trees)
    shard.set("repro_forest_groups", (), n_groups)
    shard.set("repro_forest_waves", (), n_waves)
    for rec in tree_stats:
        shard.set(
            "repro_forest_tree_elapsed_seconds",
            (str(rec["tree"]),),
            rec["elapsed"],
        )
    for r, delta in enumerate(cross_tree["per_rank"]):
        registry.shard(r).inc(
            "repro_forest_cross_tree_hits_total",
            (str(r),),
            delta["cross_tree_hits"],
        )
        registry.shard(r).inc(
            "repro_forest_cross_tree_hit_bytes_total",
            (str(r),),
            delta["cross_tree_hit_bytes"],
        )
    shard.set(
        "repro_forest_cross_tree_hit_rate",
        (),
        cross_tree["cross_tree_hit_rate"],
    )
