"""Random distribution of records across processors.

The paper assumes the training set "is initially distributed at random
among the p processors" and relies on the Angluin–Valiant bound
(Theorem 1) for the resulting balance. Two policies are provided:

* ``shuffle_split`` — global random permutation, then equal-size shares
  (the experimental setup: "data is distributed equally to all the
  processors at random");
* ``multinomial_split`` — each record independently picks a uniform rank
  (the Theorem-1 model; shares differ by O(sqrt(n/p log n))).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .schema import Schema

if TYPE_CHECKING:  # avoid a circular import: cluster.machine -> ooc -> data
    from repro.cluster.machine import RankContext
    from repro.ooc.columnset import ColumnSet

Fragment = tuple[dict[str, np.ndarray], np.ndarray]


def _take(columns: dict[str, np.ndarray], labels: np.ndarray, idx: np.ndarray) -> Fragment:
    return {k: v[idx] for k, v in columns.items()}, labels[idx]


def shuffle_split(
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    n_ranks: int,
    seed: int = 0,
) -> list[Fragment]:
    """Random permutation, then contiguous shares differing by at most one
    record."""
    if n_ranks < 1:
        raise ValueError(f"need at least one rank, got {n_ranks}")
    n = len(labels)
    perm = np.random.default_rng(seed).permutation(n)
    bounds = np.linspace(0, n, n_ranks + 1).astype(np.int64)
    return [
        _take(columns, labels, perm[bounds[r] : bounds[r + 1]])
        for r in range(n_ranks)
    ]


def multinomial_split(
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    n_ranks: int,
    seed: int = 0,
) -> list[Fragment]:
    """Each record independently lands on a uniformly random rank."""
    if n_ranks < 1:
        raise ValueError(f"need at least one rank, got {n_ranks}")
    n = len(labels)
    owner = np.random.default_rng(seed).integers(0, n_ranks, n)
    return [_take(columns, labels, np.flatnonzero(owner == r)) for r in range(n_ranks)]


def load_fragment(
    ctx: "RankContext",
    schema: Schema,
    fragments: list[Fragment],
    batch_rows: int | None = None,
    name: str = "train",
) -> "ColumnSet":
    """SPMD helper: write this rank's fragment onto its local disk.

    The paper's timing starts after the initial distribution, so callers
    normally run this in a separate program (or reset clocks) before
    timing ``fit``.
    """
    from repro.ooc.columnset import ColumnSet

    cols, labels = fragments[ctx.rank]
    return ColumnSet.from_arrays(
        ctx.disk, schema, cols, labels, name=f"{name}@{ctx.rank}", batch_rows=batch_rows
    )
