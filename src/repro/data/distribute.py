"""Random distribution of records across processors.

The paper assumes the training set "is initially distributed at random
among the p processors" and relies on the Angluin–Valiant bound
(Theorem 1) for the resulting balance. Two policies are provided:

* ``shuffle_split`` — global random permutation, then equal-size shares
  (the experimental setup: "data is distributed equally to all the
  processors at random");
* ``multinomial_split`` — each record independently picks a uniform rank
  (the Theorem-1 model; shares differ by O(sqrt(n/p log n))).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .schema import Schema

if TYPE_CHECKING:  # avoid a circular import: cluster.machine -> ooc -> data
    from repro.cluster.machine import RankContext
    from repro.ooc.columnset import ColumnSet

Fragment = tuple[dict[str, np.ndarray], np.ndarray]


def _take(columns: dict[str, np.ndarray], labels: np.ndarray, idx: np.ndarray) -> Fragment:
    return {k: v[idx] for k, v in columns.items()}, labels[idx]


def split_indices(
    n: int,
    n_ranks: int,
    seed: int = 0,
    policy: str = "shuffle",
) -> list[np.ndarray]:
    """Per-rank original-row indices for a distribution policy — the same
    draws ``shuffle_split``/``multinomial_split`` make, exposed so layers
    above (forest bagging) can reason about *which* global records landed
    on each rank."""
    if n_ranks < 1:
        raise ValueError(f"need at least one rank, got {n_ranks}")
    if policy == "shuffle":
        perm = np.random.default_rng(seed).permutation(n)
        bounds = np.linspace(0, n, n_ranks + 1).astype(np.int64)
        return [perm[bounds[r] : bounds[r + 1]] for r in range(n_ranks)]
    if policy == "multinomial":
        owner = np.random.default_rng(seed).integers(0, n_ranks, n)
        return [np.flatnonzero(owner == r) for r in range(n_ranks)]
    raise ValueError(f"unknown distribution policy {policy!r}")


def shuffle_split(
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    n_ranks: int,
    seed: int = 0,
) -> list[Fragment]:
    """Random permutation, then contiguous shares differing by at most one
    record."""
    ids = split_indices(len(labels), n_ranks, seed=seed, policy="shuffle")
    return [_take(columns, labels, idx) for idx in ids]


def multinomial_split(
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    n_ranks: int,
    seed: int = 0,
) -> list[Fragment]:
    """Each record independently lands on a uniformly random rank."""
    ids = split_indices(len(labels), n_ranks, seed=seed, policy="multinomial")
    return [_take(columns, labels, idx) for idx in ids]


def load_fragment(
    ctx: "RankContext",
    schema: Schema,
    fragments: list[Fragment],
    batch_rows: int | None = None,
    name: str = "train",
) -> "ColumnSet":
    """SPMD helper: write this rank's fragment onto its local disk.

    The paper's timing starts after the initial distribution, so callers
    normally run this in a separate program (or reset clocks) before
    timing ``fit``.
    """
    from repro.ooc.columnset import ColumnSet

    cols, labels = fragments[ctx.rank]
    return ColumnSet.from_arrays(
        ctx.disk, schema, cols, labels, name=f"{name}@{ctx.rank}", batch_rows=batch_rows
    )
