"""Generic synthetic datasets beyond the Quest workload.

The Quest generator is two-class with a fixed schema; these helpers make
datasets with arbitrary class counts and attribute mixes so tests and
examples can exercise the multi-class code paths (2^c SSE corner
enumeration, multi-class categorical subset search, confusion matrices).
"""

from __future__ import annotations

import numpy as np

from .schema import CATEGORICAL, LABEL_DTYPE, NUMERIC, Attribute, Schema

__all__ = ["make_blobs", "blob_schema"]


def blob_schema(
    n_numeric: int = 3, n_categorical: int = 1, cardinality: int = 4,
    n_classes: int = 3,
) -> Schema:
    """Schema with ``x0..``, ``c0..`` attributes and ``n_classes`` labels."""
    attrs = [Attribute(f"x{i}", NUMERIC) for i in range(n_numeric)]
    attrs += [
        Attribute(f"c{i}", CATEGORICAL, cardinality=cardinality)
        for i in range(n_categorical)
    ]
    return Schema(tuple(attrs), n_classes=n_classes)


def make_blobs(
    n: int,
    schema: Schema | None = None,
    *,
    separation: float = 3.0,
    noise: float = 0.0,
    seed: int = 0,
) -> tuple[Schema, dict[str, np.ndarray], np.ndarray]:
    """Gaussian blobs, one per class, with class-correlated categoricals.

    Numeric attribute ``xi`` of class k is drawn from
    ``N(k·separation, 1)``; categorical attribute ``ci`` equals
    ``k mod cardinality`` with probability 0.7, else uniform. ``noise``
    flips labels independently. Returns ``(schema, columns, labels)``.
    """
    if n < 0:
        raise ValueError(f"negative record count {n}")
    if not 0.0 <= noise <= 1.0:
        raise ValueError(f"noise must be a probability, got {noise}")
    schema = schema or blob_schema()
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, schema.n_classes, n).astype(LABEL_DTYPE)
    columns: dict[str, np.ndarray] = {}
    for a in schema.numeric:
        columns[a.name] = rng.normal(
            loc=labels * separation, scale=1.0, size=n
        )
    for a in schema.categorical:
        aligned = (labels % a.cardinality).astype(np.int32)
        random = rng.integers(0, a.cardinality, n).astype(np.int32)
        columns[a.name] = np.where(rng.random(n) < 0.7, aligned, random)
    if noise > 0.0 and n > 0:
        flip = rng.random(n) < noise
        labels = labels.copy()
        labels[flip] = rng.integers(0, schema.n_classes, int(flip.sum()))
    return schema, columns, labels
