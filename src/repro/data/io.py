"""CSV import/export for datasets.

A practical on-ramp for real data: a header row names the columns, the
label column is configurable, categorical columns are code-mapped in
first-appearance order (the mapping is returned so predictions can be
decoded). Numeric parsing failures raise with row context instead of
silently coercing.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field

import numpy as np

from .schema import CATEGORICAL, LABEL_DTYPE, NUMERIC, Attribute, Schema

__all__ = ["CsvCodec", "read_csv", "write_csv"]


@dataclass
class CsvCodec:
    """Value↔code mappings produced by :func:`read_csv` (one dict per
    categorical column plus the label mapping)."""

    categorical: dict[str, dict[str, int]] = field(default_factory=dict)
    labels: dict[str, int] = field(default_factory=dict)

    def decode_labels(self, codes: np.ndarray) -> list[str]:
        inverse = {v: k for k, v in self.labels.items()}
        return [inverse[int(c)] for c in codes]


def _code(mapping: dict[str, int], token: str) -> int:
    if token not in mapping:
        mapping[token] = len(mapping)
    return mapping[token]


def read_csv(
    path: str,
    label_column: str,
    categorical_columns: set[str] | None = None,
) -> tuple[Schema, dict[str, np.ndarray], np.ndarray, CsvCodec]:
    """Load a CSV into (schema, columns, labels, codec).

    Columns not named in ``categorical_columns`` are parsed as float64;
    categorical columns and labels are code-mapped in first-appearance
    order.
    """
    categorical_columns = categorical_columns or set()
    codec = CsvCodec()
    raw_cols: dict[str, list] = {}
    raw_labels: list[int] = []

    with open(path, newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: missing header row")
        names = list(reader.fieldnames)
        if label_column not in names:
            raise ValueError(
                f"{path}: label column {label_column!r} not in header {names}"
            )
        unknown = categorical_columns - set(names)
        if unknown:
            raise ValueError(f"{path}: categorical columns {sorted(unknown)} not in header")
        feature_names = [n for n in names if n != label_column]
        for n in feature_names:
            raw_cols[n] = []
        for row_idx, row in enumerate(reader, start=2):
            raw_labels.append(_code(codec.labels, row[label_column]))
            for n in feature_names:
                token = row[n]
                if n in categorical_columns:
                    raw_cols[n].append(
                        _code(codec.categorical.setdefault(n, {}), token)
                    )
                else:
                    try:
                        raw_cols[n].append(float(token))
                    except ValueError:
                        raise ValueError(
                            f"{path}:{row_idx}: column {n!r}: "
                            f"cannot parse {token!r} as a number "
                            f"(declare it categorical?)"
                        ) from None

    if len(codec.labels) < 2:
        raise ValueError(f"{path}: need at least two distinct label values")
    attributes = []
    columns: dict[str, np.ndarray] = {}
    for n in feature_names:
        if n in categorical_columns:
            cardinality = max(len(codec.categorical.get(n, {})), 2)
            attributes.append(Attribute(n, CATEGORICAL, cardinality=cardinality))
            columns[n] = np.asarray(raw_cols[n], dtype=np.int32)
        else:
            attributes.append(Attribute(n, NUMERIC))
            columns[n] = np.asarray(raw_cols[n], dtype=np.float64)
    schema = Schema(tuple(attributes), n_classes=len(codec.labels))
    labels = np.asarray(raw_labels, dtype=LABEL_DTYPE)
    return schema, columns, labels, codec


def write_csv(
    path: str,
    schema: Schema,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    label_column: str = "label",
    codec: CsvCodec | None = None,
) -> None:
    """Write a dataset back to CSV (codes decoded through ``codec`` when
    provided, else written as integers)."""
    n = schema.validate_columns(columns, labels)
    inverse_cat = {}
    inverse_lab = {}
    if codec is not None:
        inverse_cat = {
            name: {v: k for k, v in mapping.items()}
            for name, mapping in codec.categorical.items()
        }
        inverse_lab = {v: k for k, v in codec.labels.items()}
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(schema.names + [label_column])
        for i in range(n):
            row = []
            for a in schema:
                v = columns[a.name][i]
                if not a.is_numeric and a.name in inverse_cat:
                    row.append(inverse_cat[a.name][int(v)])
                elif a.is_numeric:
                    row.append(repr(float(v)))
                else:
                    row.append(int(v))
            row.append(inverse_lab.get(int(labels[i]), int(labels[i])))
            writer.writerow(row)
