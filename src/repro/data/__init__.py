"""Synthetic data substrate: the Quest generator and record distribution."""

from .distribute import load_fragment, multinomial_split, shuffle_split
from .io import CsvCodec, read_csv, write_csv
from .generator import (
    GROUP_A,
    GROUP_B,
    N_FUNCTIONS,
    generate_quest,
    quest_schema,
)
from .synthetic import blob_schema, make_blobs
from .schema import (
    CATEGORICAL,
    LABEL_DTYPE,
    NUMERIC,
    Attribute,
    Schema,
    make_schema,
)

__all__ = [
    "Attribute",
    "CATEGORICAL",
    "GROUP_A",
    "GROUP_B",
    "CsvCodec",
    "LABEL_DTYPE",
    "N_FUNCTIONS",
    "NUMERIC",
    "Schema",
    "generate_quest",
    "load_fragment",
    "make_schema",
    "multinomial_split",
    "quest_schema",
    "read_csv",
    "write_csv",
    "blob_schema",
    "make_blobs",
    "shuffle_split",
]
