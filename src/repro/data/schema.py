"""Dataset schemas.

A record has numeric and categorical attributes plus a class label
(Section 1 of the paper). Categorical values are stored as integer codes
``0..cardinality-1``; numeric values as float64; labels as int32 codes
``0..n_classes-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

NUMERIC = "numeric"
CATEGORICAL = "categorical"

LABEL_DTYPE = np.dtype(np.int32)
NUMERIC_DTYPE = np.dtype(np.float64)
CATEGORICAL_DTYPE = np.dtype(np.int32)


@dataclass(frozen=True)
class Attribute:
    """One field of a record."""

    name: str
    kind: str  # NUMERIC or CATEGORICAL
    cardinality: int = 0  # number of distinct codes; categorical only

    def __post_init__(self) -> None:
        if self.kind not in (NUMERIC, CATEGORICAL):
            raise ValueError(f"unknown attribute kind {self.kind!r}")
        if self.kind == CATEGORICAL and self.cardinality < 2:
            raise ValueError(
                f"categorical attribute {self.name!r} needs cardinality >= 2"
            )

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    @property
    def dtype(self) -> np.dtype:
        return NUMERIC_DTYPE if self.is_numeric else CATEGORICAL_DTYPE


@dataclass(frozen=True)
class Schema:
    """Ordered attributes plus the number of classes."""

    attributes: tuple[Attribute, ...]
    n_classes: int = 2

    def __post_init__(self) -> None:
        if self.n_classes < 2:
            raise ValueError("need at least two classes")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {names}")

    # -- lookups ----------------------------------------------------------
    def __iter__(self):
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise KeyError(f"no attribute named {name!r}")

    @property
    def names(self) -> list[str]:
        return [a.name for a in self.attributes]

    @property
    def numeric(self) -> list[Attribute]:
        return [a for a in self.attributes if a.is_numeric]

    @property
    def categorical(self) -> list[Attribute]:
        return [a for a in self.attributes if not a.is_numeric]

    def row_nbytes(self) -> int:
        """Bytes per record on disk (all attribute columns + label)."""
        return (
            sum(a.dtype.itemsize for a in self.attributes) + LABEL_DTYPE.itemsize
        )

    def validate_columns(
        self, columns: dict[str, np.ndarray], labels: np.ndarray
    ) -> int:
        """Check a column dict + label vector against this schema; returns
        the (common) row count."""
        if set(columns) != set(self.names):
            raise ValueError(
                f"columns {sorted(columns)} do not match schema {sorted(self.names)}"
            )
        n = len(labels)
        for a in self.attributes:
            if len(columns[a.name]) != n:
                raise ValueError(
                    f"column {a.name!r} has {len(columns[a.name])} rows, "
                    f"labels have {n}"
                )
        if n and (labels.min() < 0 or labels.max() >= self.n_classes):
            raise ValueError("label codes out of range")
        return n


def make_schema(
    numeric: list[str], categorical: dict[str, int], n_classes: int = 2
) -> Schema:
    """Convenience constructor: numeric names + {categorical name: cardinality}."""
    attrs = [Attribute(n, NUMERIC) for n in numeric]
    attrs += [Attribute(n, CATEGORICAL, k) for n, k in categorical.items()]
    return Schema(tuple(attrs), n_classes)
