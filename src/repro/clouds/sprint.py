"""SPRINT-style exact baseline (Shafer, Agrawal, Mehta — VLDB'96).

The comparison point the CLOUDS papers use: presort each numeric
attribute once into an *attribute list* (value, class, record-id); at
every node scan the sorted lists to evaluate the gini at **every**
candidate position; split the winning list directly and partition the
remaining lists through a record-id membership table (SPRINT's hash
join). Exact — and I/O- and compute-hungry, which is precisely what
CLOUDS improves on.

This implementation is in-core (it serves as the accuracy/compactness
oracle); the simulated-cost benches charge its I/O analytically from the
list volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import Schema

from .direct import StoppingRule
from .gini import best_categorical_split, boundary_sweep, gini_from_counts
from .intervals import categorical_count_matrix, class_counts
from .splits import CATEGORICAL_SPLIT, NUMERIC_SPLIT, Split, better
from .tree import DecisionTree, TreeNode

__all__ = ["SprintBuilder", "AttributeList"]


@dataclass
class AttributeList:
    """One attribute's (value, label, rid) triple; numeric lists stay
    sorted by value through every partition (stable filtering)."""

    values: np.ndarray
    labels: np.ndarray
    rids: np.ndarray

    def __len__(self) -> int:
        return len(self.values)

    def filter(self, keep_rid: np.ndarray) -> "AttributeList":
        """Stable selection by record-id membership (preserves order, so
        sorted lists remain sorted — SPRINT's key trick)."""
        mask = keep_rid[self.rids]
        return AttributeList(self.values[mask], self.labels[mask], self.rids[mask])


@dataclass
class _NodeLists:
    numeric: dict[str, AttributeList] = field(default_factory=dict)
    categorical: dict[str, AttributeList] = field(default_factory=dict)

    def any_list(self) -> AttributeList:
        for d in (self.numeric, self.categorical):
            for al in d.values():
                return al
        raise ValueError("node has no attribute lists")


class SprintBuilder:
    """Exact decision-tree induction with presorted attribute lists."""

    def __init__(
        self,
        schema: Schema,
        stopping: StoppingRule | None = None,
        enumerate_limit: int = 10,
    ) -> None:
        self.schema = schema
        self.stopping = stopping or StoppingRule()
        self.enumerate_limit = enumerate_limit

    def fit(self, columns: dict[str, np.ndarray], labels: np.ndarray) -> DecisionTree:
        n = len(labels)
        rids = np.arange(n)
        lists = _NodeLists()
        for a in self.schema.numeric:
            order = np.argsort(columns[a.name], kind="stable")
            lists.numeric[a.name] = AttributeList(
                np.asarray(columns[a.name])[order], labels[order], rids[order]
            )
        for a in self.schema.categorical:
            lists.categorical[a.name] = AttributeList(
                np.asarray(columns[a.name]), labels.copy(), rids.copy()
            )
        self._next_id = 0
        self._n_total = n
        root = self._build(lists, depth=0)
        return DecisionTree(root=root, schema=self.schema, meta={"builder": "sprint"})

    # -- split search -----------------------------------------------------
    def _best_numeric(self, name: str, al: AttributeList, counts) -> Split | None:
        n = len(al)
        if n < 2:
            return None
        onehot = np.zeros((n, self.schema.n_classes), dtype=np.float64)
        onehot[np.arange(n), al.labels] = 1.0
        cum = np.cumsum(onehot, axis=0)
        pos = np.flatnonzero(al.values[:-1] != al.values[1:])
        if pos.size == 0:
            return None
        ginis = boundary_sweep(cum[pos], np.asarray(counts, dtype=np.float64))
        k = int(np.argmin(ginis))
        return Split(
            attribute=name,
            kind=NUMERIC_SPLIT,
            gini=float(ginis[k]),
            threshold=float(al.values[pos[k]]),
        )

    def _find_split(self, lists: _NodeLists, counts: np.ndarray) -> Split | None:
        best: Split | None = None
        for name, al in lists.numeric.items():
            best = better(best, self._best_numeric(name, al, counts))
        for a in self.schema.categorical:
            al = lists.categorical[a.name]
            matrix = categorical_count_matrix(
                al.values, al.labels, a.cardinality, self.schema.n_classes
            )
            res = best_categorical_split(matrix, self.enumerate_limit)
            if res is not None:
                g, left = res
                best = better(
                    best,
                    Split(
                        attribute=a.name,
                        kind=CATEGORICAL_SPLIT,
                        gini=g,
                        left_codes=left,
                    ),
                )
        return best

    # -- recursion ---------------------------------------------------------
    def _build(self, lists: _NodeLists, depth: int) -> TreeNode:
        al0 = lists.any_list()
        counts = class_counts(al0.labels, self.schema.n_classes)
        node = TreeNode(node_id=self._next_id, depth=depth, class_counts=counts)
        self._next_id += 1
        if self.stopping.is_leaf(counts, depth):
            return node
        split = self._find_split(lists, counts)
        if split is None or split.gini >= float(gini_from_counts(counts)):
            return node
        # membership table: SPRINT's hash join keyed by record id
        win = (
            lists.numeric[split.attribute]
            if split.kind == NUMERIC_SPLIT
            else lists.categorical[split.attribute]
        )
        goes_left = split.goes_left(win.values)
        if not goes_left.any() or goes_left.all():
            return node
        keep_left = np.zeros(self._n_total, dtype=bool)
        keep_left[win.rids[goes_left]] = True
        left_lists, right_lists = _NodeLists(), _NodeLists()
        for name, al in lists.numeric.items():
            left_lists.numeric[name] = al.filter(keep_left)
            right_lists.numeric[name] = al.filter(~keep_left)
        for name, al in lists.categorical.items():
            left_lists.categorical[name] = al.filter(keep_left)
            right_lists.categorical[name] = al.filter(~keep_left)
        node.split = split
        node.left = self._build(left_lists, depth + 1)
        node.right = self._build(right_lists, depth + 1)
        return node
