"""Classifier evaluation helpers: accuracy, confusion matrices,
compactness — the qualities the CLOUDS papers compare against SPRINT."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tree import DecisionTree

__all__ = [
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "train_test_split",
    "evaluate_tree",
    "TreeQuality",
]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of matching labels (1.0 for empty input)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays differ in shape")
    if y_true.size == 0:
        return 1.0
    return float(np.mean(y_true == y_pred))


def error_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return 1.0 - accuracy(y_true, y_pred)


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """(n_classes, n_classes) matrix; rows = true class, cols = predicted."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    return (
        np.bincount(y_true * n_classes + y_pred, minlength=n_classes * n_classes)
        .reshape(n_classes, n_classes)
        .astype(np.int64)
    )


def train_test_split(
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[dict, np.ndarray, dict, np.ndarray]:
    """Random split into (train_cols, train_labels, test_cols, test_labels)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0,1), got {test_fraction}")
    n = len(labels)
    perm = np.random.default_rng(seed).permutation(n)
    cut = int(round(n * (1.0 - test_fraction)))
    tr, te = perm[:cut], perm[cut:]
    return (
        {k: v[tr] for k, v in columns.items()},
        labels[tr],
        {k: v[te] for k, v in columns.items()},
        labels[te],
    )


@dataclass(frozen=True)
class TreeQuality:
    """Accuracy + compactness summary of one fitted tree."""

    accuracy: float
    n_nodes: int
    n_leaves: int
    depth: int


def evaluate_tree(
    tree: DecisionTree, columns: dict[str, np.ndarray], labels: np.ndarray
) -> TreeQuality:
    """Accuracy of ``tree`` on a test fragment plus its size statistics."""
    return TreeQuality(
        accuracy=accuracy(labels, tree.predict(columns)),
        n_nodes=tree.n_nodes,
        n_leaves=tree.n_leaves,
        depth=tree.depth,
    )
