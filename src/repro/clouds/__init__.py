"""Sequential CLOUDS classifier, split machinery and baselines
(Section 4 of the paper)."""

from .builder import CloudsBuilder, CloudsConfig, draw_sample, find_split_from_arrays
from .direct import StoppingRule, find_split_direct, fit_direct
from .gini import (
    best_categorical_split,
    best_numeric_split_exact,
    boundary_sweep,
    gini_from_counts,
    gini_lower_bound,
    weighted_gini,
)
from .intervals import (
    boundaries_from_sample,
    categorical_count_matrix,
    class_counts,
    interval_histogram,
    interval_index,
    scale_q,
)
from .inspect import gini_importance, permutation_importance
from .mdl import MdlPruneConfig, mdl_prune
from .metrics import (
    TreeQuality,
    accuracy,
    confusion_matrix,
    error_rate,
    evaluate_tree,
    train_test_split,
)
from .nodestats import NodeStats, NumericStats, accumulate_batch, empty_stats, stats_from_arrays
from .splits import CATEGORICAL_SPLIT, NUMERIC_SPLIT, Split, better
from .sliq import SliqBuilder
from .sprint import AttributeList, SprintBuilder
from .ss import find_split_ss
from .sse import (
    AliveInterval,
    determine_alive_intervals,
    evaluate_alive_interval,
    member_mask,
    refine_with_alive,
    survival_ratio,
)
from .forest import DecisionForest, validate_forest
from .tree import DecisionTree, TreeNode, validate_tree
from .validation import CvResult, cross_validate, reduced_error_prune

__all__ = [
    "AliveInterval",
    "AttributeList",
    "CATEGORICAL_SPLIT",
    "CloudsBuilder",
    "CloudsConfig",
    "DecisionForest",
    "DecisionTree",
    "MdlPruneConfig",
    "NUMERIC_SPLIT",
    "NodeStats",
    "NumericStats",
    "Split",
    "SliqBuilder",
    "SprintBuilder",
    "StoppingRule",
    "TreeNode",
    "TreeQuality",
    "accumulate_batch",
    "accuracy",
    "best_categorical_split",
    "best_numeric_split_exact",
    "better",
    "boundaries_from_sample",
    "boundary_sweep",
    "categorical_count_matrix",
    "class_counts",
    "confusion_matrix",
    "cross_validate",
    "CvResult",
    "determine_alive_intervals",
    "draw_sample",
    "empty_stats",
    "error_rate",
    "evaluate_alive_interval",
    "evaluate_tree",
    "find_split_direct",
    "find_split_from_arrays",
    "find_split_ss",
    "fit_direct",
    "gini_from_counts",
    "gini_importance",
    "gini_lower_bound",
    "interval_histogram",
    "interval_index",
    "mdl_prune",
    "member_mask",
    "permutation_importance",
    "reduced_error_prune",
    "refine_with_alive",
    "scale_q",
    "stats_from_arrays",
    "survival_ratio",
    "train_test_split",
    "validate_forest",
    "validate_tree",
    "weighted_gini",
]
