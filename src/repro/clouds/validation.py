"""Cross-validation and reduced-error pruning.

The paper's methodology holds out a test set; these utilities round out
the model-quality toolbox: stratified k-fold cross-validation of any
builder, and holdout-based reduced-error pruning as the empirical
alternative to the MDL code-length criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .metrics import accuracy
from .tree import DecisionTree, TreeNode

__all__ = ["CvResult", "cross_validate", "reduced_error_prune"]


@dataclass(frozen=True)
class CvResult:
    """Per-fold and aggregate accuracy of one cross-validation."""

    fold_accuracies: tuple[float, ...]
    fold_n_nodes: tuple[int, ...]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.fold_accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.fold_accuracies))


def _stratified_folds(
    labels: np.ndarray, k: int, seed: int
) -> list[np.ndarray]:
    """Fold index arrays with per-class proportions preserved."""
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(k)]
    for cls in np.unique(labels):
        rows = rng.permutation(np.flatnonzero(labels == cls))
        for i, r in enumerate(rows):
            folds[i % k].append(int(r))
    return [np.sort(np.asarray(f, dtype=np.int64)) for f in folds]


def cross_validate(
    fit: Callable[[dict[str, np.ndarray], np.ndarray], DecisionTree],
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    k: int = 5,
    seed: int = 0,
) -> CvResult:
    """Stratified k-fold cross-validation of any ``fit(columns, labels)
    -> DecisionTree`` callable."""
    if k < 2:
        raise ValueError("need at least two folds")
    n = len(labels)
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} records")
    folds = _stratified_folds(labels, k, seed)
    accs: list[float] = []
    sizes: list[int] = []
    for held in folds:
        mask = np.ones(n, dtype=bool)
        mask[held] = False
        tree = fit(
            {name: v[mask] for name, v in columns.items()}, labels[mask]
        )
        preds = tree.predict({name: v[held] for name, v in columns.items()})
        accs.append(accuracy(labels[held], preds))
        sizes.append(tree.n_nodes)
    return CvResult(fold_accuracies=tuple(accs), fold_n_nodes=tuple(sizes))


def reduced_error_prune(
    tree: DecisionTree,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
) -> tuple[DecisionTree, int]:
    """Bottom-up pruning against a holdout set: collapse a subtree to a
    leaf whenever the leaf misclassifies no more holdout records than the
    subtree does. Returns ``(tree, nodes_removed)``; prunes in place."""
    before = tree.n_nodes
    n = len(labels)
    rows_of: dict[int, np.ndarray] = {}

    def route(node: TreeNode, rows: np.ndarray) -> None:
        rows_of[id(node)] = rows
        if node.is_leaf or rows.size == 0:
            if not node.is_leaf:
                rows_of[id(node.left)] = rows[:0]
                rows_of[id(node.right)] = rows[:0]
                route(node.left, rows[:0])
                route(node.right, rows[:0])
            return
        mask = node.split.goes_left(columns[node.split.attribute][rows])
        route(node.left, rows[mask])
        route(node.right, rows[~mask])

    route(tree.root, np.arange(n))

    def subtree_errors(node: TreeNode) -> int:
        rows = rows_of[id(node)]
        if node.is_leaf:
            return int(np.sum(labels[rows] != node.label))
        return subtree_errors(node.left) + subtree_errors(node.right)

    def walk(node: TreeNode) -> None:
        if node.is_leaf:
            return
        walk(node.left)
        walk(node.right)
        rows = rows_of[id(node)]
        as_leaf = int(np.sum(labels[rows] != node.label))
        if as_leaf <= subtree_errors(node):
            node.to_leaf()

    walk(tree.root)
    return tree, before - tree.n_nodes
