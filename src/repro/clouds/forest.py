"""Bagged decision forests: B member trees plus majority voting.

The forest is a pure model container — training lives in
:mod:`repro.forest` (the parallel out-of-core trainer), serving in
:mod:`repro.serve` (the compiled stacked-table engine). Reference
prediction here defines the voting semantics every other path must
match bit for bit: each member casts one vote for its predicted label,
and the forest answers the label with the most votes, ties going to the
lowest label code (the same tie-break as ``TreeNode.label``'s argmax).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.data.schema import LABEL_DTYPE, Schema

from .tree import (
    DecisionTree,
    _json_nesting_depth,
    _recursion_headroom,
    validate_tree,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve import CompiledForest

__all__ = ["DecisionForest"]


@dataclass
class DecisionForest:
    """A fitted ensemble: member trees over one schema."""

    trees: list[DecisionTree]
    schema: Schema
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.trees:
            raise ValueError("a forest needs at least one tree")

    # -- structure ----------------------------------------------------------
    @property
    def n_trees(self) -> int:
        return len(self.trees)

    def __iter__(self) -> Iterator[DecisionTree]:
        return iter(self.trees)

    # -- inference ----------------------------------------------------------
    def vote_counts(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Per-record ballot box: an ``(n, n_classes)`` int64 matrix of
        member votes."""
        n = len(next(iter(columns.values()))) if columns else 0
        counts = np.zeros((n, self.schema.n_classes), dtype=np.int64)
        rows = np.arange(n)
        for tree in self.trees:
            counts[rows, tree.predict(columns)] += 1
        return counts

    def predict(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Majority vote over the member trees (ties to the lowest label
        code). This is the reference path the compiled engine is pinned
        against."""
        return np.argmax(self.vote_counts(columns), axis=1).astype(LABEL_DTYPE)

    def compile(self) -> "CompiledForest":
        """Flatten into a :class:`repro.serve.CompiledForest` — stacked
        per-tree flat tables with a vectorised majority vote."""
        from repro.serve import compile_forest

        return compile_forest(self)

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "trees": [t.to_dict() for t in self.trees],
            "n_classes": self.schema.n_classes,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict, schema: Schema) -> "DecisionForest":
        return cls(
            trees=[DecisionTree.from_dict(d, schema) for d in data["trees"]],
            schema=schema,
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: str) -> None:
        """Write the forest as JSON (one document holding every member)."""
        payload = self.to_dict()
        depth = max(t.depth for t in self.trees)
        with _recursion_headroom(2 * depth + 64):
            text = json.dumps(payload)
        with open(path, "w") as fh:
            fh.write(text)

    @classmethod
    def load(cls, path: str, schema: Schema) -> "DecisionForest":
        with open(path) as fh:
            text = fh.read()
        try:
            data = json.loads(text)
        except RecursionError:
            with _recursion_headroom(2 * _json_nesting_depth(text) + 64):
                data = json.loads(text)
        return cls.from_dict(data, schema)


def validate_forest(forest: DecisionForest) -> None:
    """Every member satisfies the single-tree structural invariants."""
    for tree in forest.trees:
        validate_tree(tree)
