"""Per-node interval/count statistics.

One :class:`NodeStats` is exactly the state the paper's *replication
method* keeps per processor for one tree node: a class-frequency vector
per interval boundary for every numeric attribute (O(q·c·f) storage) plus
a count matrix per categorical attribute. Local statistics from data
chunks (or from different processors) combine by elementwise addition,
which is what makes the parallel exchange a global-combine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import Schema

from .intervals import categorical_count_matrix, class_counts, interval_index


@dataclass
class NumericStats:
    """Interval boundaries + per-interval class frequencies for one
    numeric attribute of one node.

    ``vmin``/``vmax`` track the smallest/largest value observed inside
    each interval; an interval with fewer than two distinct values cannot
    contain an interior split, so SSE never needs to keep it alive. This
    matters for duplicate-heavy attributes (Quest's ``commission`` is 0
    for a majority of records) whose gini lower bound is otherwise loose.
    """

    boundaries: np.ndarray  # (q-1,) strictly increasing
    hist: np.ndarray  # (q, c) int64
    vmin: np.ndarray | None = None  # (q,) float64, +inf where empty
    vmax: np.ndarray | None = None  # (q,) float64, -inf where empty

    def __post_init__(self) -> None:
        q = self.hist.shape[0]
        if self.vmin is None:
            self.vmin = np.full(q, np.inf)
        if self.vmax is None:
            self.vmax = np.full(q, -np.inf)

    @property
    def n_intervals(self) -> int:
        return self.hist.shape[0]

    def splittable(self) -> np.ndarray:
        """Mask of intervals that hold at least two distinct values."""
        return self.vmin < self.vmax

    def cumulative(self) -> np.ndarray:
        """Class counts at/left-of each boundary: cumsum over intervals,
        one row per boundary (drops the final all-inclusive row)."""
        return np.cumsum(self.hist, axis=0)[:-1]

    def left_of_interval(self) -> np.ndarray:
        """Class counts strictly left of each interval (row i = sum of
        intervals 0..i-1); row 0 is zero."""
        out = np.zeros_like(self.hist)
        np.cumsum(self.hist[:-1], axis=0, out=out[1:])
        return out


@dataclass
class NodeStats:
    """All splitting statistics of one node."""

    total: np.ndarray  # (c,) class counts
    numeric: dict[str, NumericStats] = field(default_factory=dict)
    categorical: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return int(self.total.sum())

    def add_inplace(self, other: "NodeStats") -> "NodeStats":
        """Merge another processor's / chunk's statistics (same boundaries)."""
        self.total = self.total + other.total
        for name, ns in other.numeric.items():
            mine = self.numeric[name]
            if mine.hist.shape != ns.hist.shape:
                raise ValueError(
                    f"cannot merge stats for {name!r}: interval counts differ"
                )
            mine.hist = mine.hist + ns.hist
            mine.vmin = np.minimum(mine.vmin, ns.vmin)
            mine.vmax = np.maximum(mine.vmax, ns.vmax)
        for name, cm in other.categorical.items():
            self.categorical[name] = self.categorical[name] + cm
        return self


def empty_stats(
    schema: Schema, boundaries: dict[str, np.ndarray]
) -> NodeStats:
    """Zeroed statistics for a node whose numeric interval boundaries are
    already fixed."""
    c = schema.n_classes
    stats = NodeStats(total=np.zeros(c, dtype=np.int64))
    for a in schema.numeric:
        b = np.asarray(boundaries[a.name], dtype=np.float64)
        stats.numeric[a.name] = NumericStats(
            boundaries=b, hist=np.zeros((len(b) + 1, c), dtype=np.int64)
        )
    for a in schema.categorical:
        stats.categorical[a.name] = np.zeros((a.cardinality, c), dtype=np.int64)
    return stats


def accumulate_batch(
    stats: NodeStats,
    schema: Schema,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
) -> None:
    """Fold one aligned batch of records into ``stats`` (the single data
    pass of the SS method / the statistics pass of SSE)."""
    c = schema.n_classes
    stats.total = stats.total + class_counts(labels, c)
    for a in schema.numeric:
        ns = stats.numeric[a.name]
        values = np.asarray(columns[a.name], dtype=np.float64)
        idx = interval_index(values, ns.boundaries)
        flat = np.bincount(
            idx.astype(np.int64) * c + np.asarray(labels, dtype=np.int64),
            minlength=ns.n_intervals * c,
        )
        ns.hist = ns.hist + flat.reshape(ns.n_intervals, c).astype(np.int64)
        np.minimum.at(ns.vmin, idx, values)
        np.maximum.at(ns.vmax, idx, values)
    for a in schema.categorical:
        stats.categorical[a.name] = stats.categorical[a.name] + (
            categorical_count_matrix(columns[a.name], labels, a.cardinality, c)
        )


def stats_from_arrays(
    schema: Schema,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    boundaries: dict[str, np.ndarray],
) -> NodeStats:
    """One-shot statistics of an in-memory fragment."""
    stats = empty_stats(schema, boundaries)
    accumulate_batch(stats, schema, columns, labels)
    return stats
