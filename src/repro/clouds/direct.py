"""The direct method: exact split search over in-memory data.

pCLOUDS uses this for small nodes ("we sort the points along every
numeric attribute and compute the gini index at each point", Section 5),
and the test-suite uses it as the correctness oracle for SS/SSE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema

from .gini import best_categorical_split, best_numeric_split_exact
from .intervals import class_counts
from .splits import CATEGORICAL_SPLIT, NUMERIC_SPLIT, Split, better
from .tree import DecisionTree, TreeNode

__all__ = ["StoppingRule", "find_split_direct", "build_subtree_direct"]


@dataclass(frozen=True)
class StoppingRule:
    """When a node becomes a leaf.

    ``min_node`` — don't split nodes smaller than this;
    ``max_depth`` — absolute depth cap (None = unbounded);
    ``purity`` — stop when the majority class fraction reaches this.
    """

    min_node: int = 2
    max_depth: int | None = None
    purity: float = 1.0

    def is_leaf(self, counts: np.ndarray, depth: int) -> bool:
        n = int(counts.sum())
        if n < max(self.min_node, 2):
            return True
        if self.max_depth is not None and depth >= self.max_depth:
            return True
        return counts.max() / n >= self.purity


def find_split_direct(
    schema: Schema,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    enumerate_limit: int = 10,
) -> Split | None:
    """Exact minimum-gini split over every attribute of an in-memory
    fragment."""
    c = schema.n_classes
    best: Split | None = None
    for a in schema.numeric:
        res = best_numeric_split_exact(columns[a.name], labels, c)
        if res is not None:
            g, thr = res
            best = better(
                best,
                Split(attribute=a.name, kind=NUMERIC_SPLIT, gini=g, threshold=thr),
            )
    for a in schema.categorical:
        flat = np.bincount(
            np.asarray(columns[a.name], dtype=np.int64) * c
            + np.asarray(labels, dtype=np.int64),
            minlength=a.cardinality * c,
        ).reshape(a.cardinality, c)
        res = best_categorical_split(flat, enumerate_limit)
        if res is not None:
            g, left = res
            best = better(
                best,
                Split(
                    attribute=a.name, kind=CATEGORICAL_SPLIT, gini=g, left_codes=left
                ),
            )
    return best


def build_subtree_direct(
    schema: Schema,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    stopping: StoppingRule,
    *,
    depth: int = 0,
    next_id: int = 0,
    enumerate_limit: int = 10,
    on_node=None,
) -> TreeNode:
    """Recursive exact tree construction of an in-memory fragment.

    ``on_node(n_records)`` is invoked once per constructed node so callers
    (e.g. the simulated small-node processing) can charge compute costs.
    Node ids are assigned depth-first starting at ``next_id``.
    """
    counts = class_counts(labels, schema.n_classes)
    node = TreeNode(node_id=next_id, depth=depth, class_counts=counts)
    if on_node is not None:
        on_node(int(counts.sum()))
    if stopping.is_leaf(counts, depth):
        return node
    split = find_split_direct(schema, columns, labels, enumerate_limit)
    if split is None:
        return node
    mask = split.goes_left(columns[split.attribute])
    n_left = int(mask.sum())
    if n_left == 0 or n_left == len(labels):
        return node  # degenerate split: nothing to gain
    parent_gini = 1.0 - float(((counts / counts.sum()) ** 2).sum())
    if split.gini >= parent_gini:
        return node  # no impurity decrease
    node.split = split
    left_cols = {k: v[mask] for k, v in columns.items()}
    right_cols = {k: v[~mask] for k, v in columns.items()}
    node.left = build_subtree_direct(
        schema,
        left_cols,
        labels[mask],
        stopping,
        depth=depth + 1,
        next_id=next_id + 1,
        enumerate_limit=enumerate_limit,
        on_node=on_node,
    )
    used = _subtree_size(node.left)
    node.right = build_subtree_direct(
        schema,
        right_cols,
        labels[~mask],
        stopping,
        depth=depth + 1,
        next_id=next_id + 1 + used,
        enumerate_limit=enumerate_limit,
        on_node=on_node,
    )
    return node


def _subtree_size(node: TreeNode) -> int:
    if node.is_leaf:
        return 1
    return 1 + _subtree_size(node.left) + _subtree_size(node.right)


def fit_direct(
    schema: Schema,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    stopping: StoppingRule | None = None,
    enumerate_limit: int = 10,
) -> DecisionTree:
    """Convenience: fit an exact in-memory tree (the correctness oracle)."""
    root = build_subtree_direct(
        schema,
        columns,
        labels,
        stopping or StoppingRule(),
        enumerate_limit=enumerate_limit,
    )
    return DecisionTree(root=root, schema=schema, meta={"builder": "direct"})
