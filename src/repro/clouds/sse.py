"""The SSE method: sampling the splitting points with estimation
(Section 4.1.1).

SSE starts from the SS result (``gini_min`` at the boundaries /
categorical splits) and estimates a lower bound ``gini_est`` for the best
gini achievable *inside* each interval. Intervals with
``gini_est < gini_min`` stay **alive**; a second data pass gathers their
member points and evaluates the gini at every distinct value, which may
beat the boundary split. The ratio of points in alive intervals to the
node size is the *survival ratio* — SSE's whole advantage is that it is
small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema

from .gini import best_numeric_split_exact, gini_lower_bound
from .nodestats import NodeStats
from .splits import NUMERIC_SPLIT, Split, better

__all__ = [
    "AliveInterval",
    "determine_alive_intervals",
    "survival_ratio",
    "evaluate_alive_interval",
    "member_mask",
    "stacked_member_masks",
]


@dataclass(frozen=True)
class AliveInterval:
    """One interval whose interior might hold a better split than gini_min."""

    attribute: str
    index: int  # interval number within the attribute
    lo: float  # open lower edge (-inf for the first interval)
    hi: float  # closed upper edge (+inf for the last interval)
    left_cum: np.ndarray  # class counts strictly left of the interval
    count: int  # records inside the interval
    gini_est: float  # lower bound on the interior gini

    def sort_cost(self) -> float:
        """Estimated processing cost (the sorting dominates) used for the
        paper's cost-based single-assignment of intervals to processors."""
        n = max(self.count, 1)
        return float(n * max(np.log2(n), 1.0))


def determine_alive_intervals(
    stats: NodeStats,
    schema: Schema,
    gini_min: float,
) -> list[AliveInterval]:
    """All intervals with ``gini_est < gini_min`` (Section 5.1.2).

    Deterministic given the statistics, so with replicated statistics
    every processor derives the identical alive list locally.
    """
    alive: list[AliveInterval] = []
    for a in schema.numeric:
        ns = stats.numeric[a.name]
        left = ns.left_of_interval()
        hist = ns.hist
        b = ns.boundaries
        splittable = ns.splittable()
        for i in range(hist.shape[0]):
            count = int(hist[i].sum())
            if count < 2 or not splittable[i]:
                continue  # fewer than two distinct values: no interior split
            est = gini_lower_bound(left[i], hist[i], stats.total)
            if est < gini_min:
                alive.append(
                    AliveInterval(
                        attribute=a.name,
                        index=i,
                        lo=float(b[i - 1]) if i > 0 else -np.inf,
                        hi=float(b[i]) if i < len(b) else np.inf,
                        left_cum=left[i].astype(np.float64),
                        count=count,
                        gini_est=float(est),
                    )
                )
    return alive


def survival_ratio(alive: list[AliveInterval], n: int) -> float:
    """Records living in alive intervals, relative to the node size.

    Summed over every numeric attribute — a record inside an alive
    interval of two attributes is scanned twice in the second pass — so
    the ratio can exceed 1.0 on hard nodes (it is bounded by the number
    of numeric attributes). SSE pays off when this is small.
    """
    if n <= 0:
        return 0.0
    return sum(iv.count for iv in alive) / float(n)


def member_mask(values: np.ndarray, iv: AliveInterval) -> np.ndarray:
    """Mask of records falling inside an alive interval ``(lo, hi]``."""
    values = np.asarray(values)
    return (values > iv.lo) & (values <= iv.hi)


def stacked_member_masks(
    values: np.ndarray, intervals: list[AliveInterval]
) -> list[np.ndarray]:
    """Membership masks of *all* of one attribute's alive intervals
    against one value chunk, via a single stacked boundary comparison.

    The intervals of one attribute come from the same boundary partition,
    so they are disjoint ``(lo, hi]`` ranges in ascending index order —
    one ``searchsorted`` against the stacked upper edges locates every
    record's candidate interval, and one comparison against the stacked
    lower edges confirms membership. Bit-identical to calling
    :func:`member_mask` per interval (NaNs sort past every edge and drop
    out, exactly as ``values > lo`` rejects them), at one O(n log k) scan
    instead of k full-column comparisons.
    """
    values = np.asarray(values)
    k = len(intervals)
    his = np.array([iv.hi for iv in intervals])
    los = np.array([iv.lo for iv in intervals])
    j = np.searchsorted(his, values, side="left")
    inside = np.empty(len(values), dtype=bool)
    in_range = j < k
    inside[~in_range] = False
    jc = j[in_range]
    inside[in_range] = values[in_range] > los[jc]
    return [inside & (j == idx) for idx in range(k)]


def evaluate_alive_interval(
    iv: AliveInterval,
    values: np.ndarray,
    labels: np.ndarray,
    total_counts: np.ndarray,
    n_classes: int,
) -> Split | None:
    """Exact best split inside one alive interval: sort the members and
    evaluate the gini at every distinct point (Section 5.1.3)."""
    res = best_numeric_split_exact(
        values,
        labels,
        n_classes,
        base_left=iv.left_cum,
        node_counts=total_counts,
    )
    if res is None:
        return None
    g, thr = res
    return Split(attribute=iv.attribute, kind=NUMERIC_SPLIT, gini=g, threshold=thr)


def refine_with_alive(
    boundary_best: Split | None,
    alive_results: list[Split | None],
) -> Split | None:
    """Final SSE splitter: the boundary winner unless an alive interval
    produced something strictly better."""
    best = boundary_best
    for s in alive_results:
        best = better(best, s)
    return best
