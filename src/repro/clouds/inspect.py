"""Model inspection: which attributes drive a fitted tree.

Gini importance (mean decrease in impurity) is the natural companion of
a gini-split tree: each internal node contributes its records-weighted
impurity decrease to its split attribute. Permutation importance is the
model-agnostic check (shuffle one column, measure the accuracy drop).
"""

from __future__ import annotations

import numpy as np

from .gini import gini_from_counts, weighted_gini
from .metrics import accuracy
from .tree import DecisionTree

__all__ = ["gini_importance", "permutation_importance"]


def gini_importance(tree: DecisionTree, normalize: bool = True) -> dict[str, float]:
    """Mean-decrease-in-impurity importance per attribute.

    Every attribute of the schema appears in the result (zero when the
    tree never splits on it). With ``normalize`` the values sum to 1
    unless the tree is a single leaf.
    """
    scores = {a.name: 0.0 for a in tree.schema}
    n_root = max(tree.root.n, 1)
    for node in tree.iter_nodes():
        if node.is_leaf:
            continue
        parent = float(gini_from_counts(node.class_counts))
        child = float(
            weighted_gini(node.left.class_counts, node.right.class_counts)
        )
        scores[node.split.attribute] += (node.n / n_root) * max(parent - child, 0.0)
    if normalize:
        total = sum(scores.values())
        if total > 0:
            scores = {k: v / total for k, v in scores.items()}
    return scores


def permutation_importance(
    tree: DecisionTree,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    n_repeats: int = 3,
    seed: int = 0,
) -> dict[str, float]:
    """Mean accuracy drop when one column is shuffled (non-negative
    clamp; averaged over ``n_repeats`` shuffles)."""
    if n_repeats < 1:
        raise ValueError("need at least one repeat")
    rng = np.random.default_rng(seed)
    base = accuracy(labels, tree.predict(columns))
    out = {}
    for a in tree.schema:
        drops = []
        for _ in range(n_repeats):
            shuffled = dict(columns)
            shuffled[a.name] = rng.permutation(columns[a.name])
            drops.append(base - accuracy(labels, tree.predict(shuffled)))
        out[a.name] = max(float(np.mean(drops)), 0.0)
    return out
