"""Split descriptors shared by all classifiers in the package."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

NUMERIC_SPLIT = "numeric"
CATEGORICAL_SPLIT = "categorical"


@dataclass(frozen=True)
class Split:
    """A binary splitter: ``x <= threshold`` (numeric) or
    ``code in left_codes`` (categorical) routes a record left."""

    attribute: str
    kind: str
    gini: float
    threshold: float | None = None
    left_codes: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.kind == NUMERIC_SPLIT:
            if self.threshold is None:
                raise ValueError("numeric split needs a threshold")
        elif self.kind == CATEGORICAL_SPLIT:
            if not self.left_codes:
                raise ValueError("categorical split needs a non-empty left set")
        else:
            raise ValueError(f"unknown split kind {self.kind!r}")
        # cached outside the dataclass fields so eq/hash stay value-based;
        # int64 (not the caller's dtype) so float queries are compared by
        # value instead of through a silent cast of the codes
        codes = (
            np.array(sorted(self.left_codes), dtype=np.int64)
            if self.left_codes
            else None
        )
        object.__setattr__(self, "_codes", codes)

    @property
    def left_codes_array(self) -> np.ndarray | None:
        """Sorted ``int64`` array of the left codes (``None`` for numeric
        splits); built once at construction, shared by every caller."""
        return self._codes

    def goes_left(self, values: np.ndarray) -> np.ndarray:
        """Boolean mask of records routed to the left child.

        Numeric: ``values <= threshold`` (NaN compares false, so missing
        values route right). Categorical: membership of the integer code
        in the precomputed left set.
        """
        values = np.asarray(values)
        if self.kind == NUMERIC_SPLIT:
            return values <= self.threshold
        return np.isin(values, self._codes)

    def describe(self) -> str:
        if self.kind == NUMERIC_SPLIT:
            return f"{self.attribute} <= {self.threshold:.6g}"
        return f"{self.attribute} in {sorted(self.left_codes)}"

    def order_key(self) -> tuple:
        """Total order over splits used to break exact gini ties, so every
        code path (sequential direct, SS/SSE, the parallel minloc
        election) converges on the same winner."""
        return (
            self.attribute,
            self.kind,
            self.threshold if self.threshold is not None else 0.0,
            tuple(sorted(self.left_codes)) if self.left_codes else (),
        )


def better(a: Split | None, b: Split | None) -> Split | None:
    """The lower-gini of two optional splits; exact gini ties resolve by
    the deterministic :meth:`Split.order_key` (not call order)."""
    if a is None:
        return b
    if b is None:
        return a
    if b.gini < a.gini:
        return b
    if b.gini == a.gini and b.order_key() < a.order_key():
        return b
    return a
