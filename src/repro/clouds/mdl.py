"""MDL pruning (Section 4 of the paper: "an algorithm based on the
minimum description length principle to prune the decision tree").

We implement the two-part code of SLIQ/SPRINT-style MDL pruning: the cost
of a subtree is the bits to describe its structure plus the bits to
describe the training examples given the structure; a subtree is collapsed
to a leaf whenever the leaf encoding is no more expensive. The pruning
phase runs in memory on the fitted tree — its cost is negligible next to
construction, exactly as the paper assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema

from .splits import CATEGORICAL_SPLIT
from .tree import DecisionTree, TreeNode

__all__ = ["MdlPruneConfig", "mdl_prune", "leaf_cost", "split_cost"]


@dataclass(frozen=True)
class MdlPruneConfig:
    """Code-length weights. ``structure_bits`` is the cost of marking a
    node internal vs leaf; larger values prune more aggressively."""

    structure_bits: float = 1.0


def leaf_cost(counts: np.ndarray) -> float:
    """Bits to encode the examples at a leaf: the classic
    ``E + log2`` stochastic-complexity approximation — misclassified
    examples plus the cost of stating the class distribution."""
    counts = np.asarray(counts, dtype=np.float64)
    n = counts.sum()
    if n == 0:
        return 0.0
    errors = n - counts.max()
    k = len(counts)
    # cost of the error records + parametric complexity of the leaf model
    return float(errors) * math.log2(max(k, 2)) + 0.5 * (k - 1) * math.log2(max(n, 2))


def split_cost(node: TreeNode, schema: Schema) -> float:
    """Bits to encode the splitter: choice of attribute plus the test.

    A numeric test costs log2 of the node size (choice among observed
    values); a categorical test costs one bit per attribute value (the
    subset mask)."""
    bits = math.log2(max(len(schema), 2))
    if node.split is None:
        return bits
    if node.split.kind == CATEGORICAL_SPLIT:
        bits += schema.attribute(node.split.attribute).cardinality
    else:
        bits += math.log2(max(node.n, 2))
    return bits


def mdl_prune(
    tree: DecisionTree, config: MdlPruneConfig | None = None
) -> tuple[DecisionTree, int]:
    """Prune ``tree`` in place; returns ``(tree, nodes_removed)``.

    Bottom-up: each internal node keeps its subtree only if
    ``structure + split + cost(children)`` beats encoding the node as a
    leaf outright.
    """
    cfg = config or MdlPruneConfig()
    before = tree.n_nodes

    def walk(node: TreeNode) -> float:
        as_leaf = cfg.structure_bits + leaf_cost(node.class_counts)
        if node.is_leaf:
            return as_leaf
        as_tree = (
            cfg.structure_bits
            + split_cost(node, tree.schema)
            + walk(node.left)
            + walk(node.right)
        )
        if as_leaf <= as_tree:
            node.to_leaf()
            return as_leaf
        return as_tree

    walk(tree.root)
    return tree, before - tree.n_nodes
