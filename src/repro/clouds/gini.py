"""Gini-index machinery shared by CLOUDS, pCLOUDS and the baselines.

Everything here is a pure function of class-count statistics, so the
sequential classifier, the parallel statistics exchange and the tests all
call the same code.

The SSE lower bound exploits convexity: for a fixed interval, the
*goodness* ``sum_j l_j^2 / nL + sum_j r_j^2 / nR`` is a sum of
quadratic-over-linear (perspective) functions of the left-count vector
``l`` and therefore convex; the weighted gini ``1 - goodness/n`` is
concave. Minimising a concave function over the box
``l_j in [L_j, L_j + I_j]`` attains its minimum at a vertex, so
evaluating all ``2^c`` corners yields the exact continuous minimum — a
true lower bound on the gini of any split realisable inside the interval
(realisable splits are points of the box).
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = [
    "gini_from_counts",
    "weighted_gini",
    "boundary_sweep",
    "best_numeric_split_exact",
    "best_categorical_split",
    "gini_lower_bound",
]


def gini_from_counts(counts: np.ndarray) -> np.ndarray | float:
    """Gini impurity ``1 - sum (n_j/n)^2`` of one or many count vectors.

    ``counts`` has class counts along the last axis; rows with zero total
    have impurity 0 (an empty partition is pure by convention).
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum(axis=-1)
    with np.errstate(divide="ignore", invalid="ignore"):
        frac2 = np.where(
            total[..., None] > 0, (counts / total[..., None]) ** 2, 0.0
        ).sum(axis=-1)
    g = np.where(total > 0, 1.0 - frac2, 0.0)
    return float(g) if g.ndim == 0 else g


def weighted_gini(left: np.ndarray, right: np.ndarray) -> np.ndarray | float:
    """Size-weighted gini of a binary split; broadcasts over leading axes."""
    left = np.asarray(left, dtype=np.float64)
    right = np.asarray(right, dtype=np.float64)
    nl = left.sum(axis=-1)
    nr = right.sum(axis=-1)
    n = nl + nr
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.where(
            n > 0,
            (nl * gini_from_counts(left) + nr * gini_from_counts(right))
            / np.maximum(n, 1),
            0.0,
        )
    return float(g) if g.ndim == 0 else g


def boundary_sweep(cum_counts: np.ndarray, total_counts: np.ndarray) -> np.ndarray:
    """Weighted gini of the split ``x <= boundary_i`` for every boundary.

    ``cum_counts[i]`` are class counts of records with values in intervals
    ``0..i`` (cumulative histogram); ``total_counts`` are the node's class
    counts. Returns one gini per boundary.
    """
    cum = np.asarray(cum_counts, dtype=np.float64)
    total = np.asarray(total_counts, dtype=np.float64)
    return weighted_gini(cum, total[None, :] - cum)


def best_numeric_split_exact(
    values: np.ndarray,
    labels: np.ndarray,
    n_classes: int,
    base_left: np.ndarray | None = None,
    node_counts: np.ndarray | None = None,
) -> tuple[float, float] | None:
    """Exact best threshold for one numeric attribute (the direct method).

    Evaluates the gini of ``x <= v`` at every distinct value ``v`` that
    leaves at least one record on each side. When scanning an *alive
    interval* of a larger node, ``base_left`` gives the class counts
    strictly left of the interval and ``node_counts`` the whole node's
    counts, so the returned gini is the node-level split gini (and the
    interval's largest value is then a legal threshold, since later
    intervals stay right). Returns ``(gini, threshold)`` or None when no
    split exists.
    """
    values = np.asarray(values)
    labels = np.asarray(labels)
    n = len(values)
    if n != len(labels):
        raise ValueError("values and labels differ in length")
    if n == 0:
        return None
    order = np.argsort(values, kind="stable")
    v = values[order]
    lab = labels[order]
    onehot = np.zeros((n, n_classes), dtype=np.float64)
    onehot[np.arange(n), lab] = 1.0
    cum = np.cumsum(onehot, axis=0)
    if base_left is not None:
        cum = cum + np.asarray(base_left, dtype=np.float64)[None, :]
    if node_counts is None:
        node_counts = cum[-1]
    node_counts = np.asarray(node_counts, dtype=np.float64)
    node_n = node_counts.sum()
    # candidate boundaries: last occurrence of each distinct value
    distinct_end = np.append(np.flatnonzero(v[:-1] != v[1:]), n - 1)
    # keep only splits with a non-empty right side at node scope
    distinct_end = distinct_end[cum[distinct_end].sum(axis=1) < node_n]
    if distinct_end.size == 0:
        return None
    ginis = boundary_sweep(cum[distinct_end], node_counts)
    k = int(np.argmin(ginis))
    return float(ginis[k]), float(v[distinct_end[k]])


def _two_class_subset(counts: np.ndarray) -> tuple[float, frozenset[int]]:
    """Optimal subset split for two classes: sort categories by
    P(class 0 | v); the optimal left set is a prefix (Breiman's theorem)."""
    total = counts.sum(axis=1)
    present = np.flatnonzero(total > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        p0 = counts[present, 0] / total[present]
    order = present[np.argsort(p0, kind="stable")]
    cum = np.cumsum(counts[order], axis=0)
    all_counts = counts.sum(axis=0, dtype=np.float64)
    ginis = boundary_sweep(cum[:-1], all_counts) if len(order) > 1 else np.array([])
    if ginis.size == 0:
        return float("inf"), frozenset()
    k = int(np.argmin(ginis))
    return float(ginis[k]), frozenset(int(x) for x in order[: k + 1])


def _enumerated_subset(counts: np.ndarray) -> tuple[float, frozenset[int]]:
    """Exhaustive subset enumeration (2^(V-1)-1 non-trivial splits)."""
    present = np.flatnonzero(counts.sum(axis=1) > 0)
    v = len(present)
    all_counts = counts.sum(axis=0, dtype=np.float64)
    best = (float("inf"), frozenset())
    if v < 2:
        return best
    # fix the first present value on the right to break the L/R symmetry
    rest = present[1:]
    for r in range(1, v):
        for combo in itertools.combinations(rest, r):
            left = counts[list(combo)].sum(axis=0, dtype=np.float64)
            g = weighted_gini(left, all_counts - left)
            if g < best[0]:
                best = (float(g), frozenset(int(x) for x in combo))
    return best


def _greedy_subset(counts: np.ndarray) -> tuple[float, frozenset[int]]:
    """Greedy hill-climbing subset construction (SPRINT's fallback for
    high-cardinality attributes). Each round scores every candidate move
    with one broadcast :func:`weighted_gini` call; ``argmin`` takes the
    first minimum, so ties go to the lowest category code exactly as the
    scalar scan did."""
    present = list(np.flatnonzero(counts.sum(axis=1) > 0))
    all_counts = counts.sum(axis=0, dtype=np.float64)
    left: set[int] = set()
    left_counts = np.zeros_like(all_counts)
    best = (float("inf"), frozenset())
    remaining = list(present)
    while len(left) < len(present) - 1 and remaining:
        cand = left_counts[None, :] + counts[remaining]
        ginis = np.atleast_1d(weighted_gini(cand, all_counts[None, :] - cand))
        k = int(np.argmin(ginis))
        g, v = float(ginis[k]), int(remaining.pop(k))
        left.add(v)
        left_counts = left_counts + counts[v]
        if g < best[0]:
            best = (g, frozenset(left))
        else:
            break  # hill climbing: stop on first non-improving move
    return best


def best_categorical_split(
    counts: np.ndarray, enumerate_limit: int = 10
) -> tuple[float, frozenset[int]] | None:
    """Best subset split for one categorical attribute.

    ``counts`` is the (cardinality, n_classes) count matrix of the node.
    Two classes use the exact prefix theorem; otherwise full enumeration
    up to ``enumerate_limit`` present values, greedy beyond. Returns
    ``(gini, left_codes)`` or None if no split exists.
    """
    counts = np.asarray(counts, dtype=np.float64)
    present = int((counts.sum(axis=1) > 0).sum())
    if present < 2:
        return None
    if counts.shape[1] == 2:
        g, s = _two_class_subset(counts)
    elif present <= enumerate_limit:
        g, s = _enumerated_subset(counts)
    else:
        g, s = _greedy_subset(counts)
    if not np.isfinite(g):
        return None
    return g, s


def gini_lower_bound(
    left_cum: np.ndarray,
    interval_counts: np.ndarray,
    total_counts: np.ndarray,
    corner_limit: int = 16,
) -> float:
    """SSE's ``gini_est``: a lower bound on the gini of any split falling
    strictly inside one interval.

    ``left_cum`` — class counts strictly left of the interval;
    ``interval_counts`` — class counts inside it; ``total_counts`` — the
    node's counts. Exact (vertex enumeration of the concave minimisation)
    for up to ``corner_limit`` classes; beyond that a vertex local search
    is used and the result is a heuristic estimate, as in CLOUDS.
    """
    L = np.asarray(left_cum, dtype=np.float64)
    I = np.asarray(interval_counts, dtype=np.float64)
    T = np.asarray(total_counts, dtype=np.float64)
    c = L.shape[0]
    if not (I.shape == (c,) and T.shape == (c,)):
        raise ValueError("class-count vectors must share one shape")
    if c <= corner_limit:
        corners = np.array(list(itertools.product((0.0, 1.0), repeat=c)))
        lefts = L[None, :] + corners * I[None, :]
        return float(np.min(weighted_gini(lefts, T[None, :] - lefts)))
    # vertex local search: flip one coordinate at a time while improving
    a = np.zeros(c)
    best = float(weighted_gini(L, T - L))
    improved = True
    while improved:
        improved = False
        for j in range(c):
            b = a.copy()
            b[j] = I[j] - b[j] if b[j] == 0 else 0.0
            g = float(weighted_gini(L + b, T - L - b))
            if g < best:
                best, a, improved = g, b, True
    return best
