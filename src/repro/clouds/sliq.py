"""SLIQ baseline (Mehta, Agrawal, Rissanen — EDBT'96).

The paper's Section 4 positions CLOUDS against SLIQ: SLIQ replaces the
repeated per-node sorting of CART/C4.5 with **one-time presorting** of
each numeric attribute and grows the tree **breadth-first**, keeping a
memory-resident *class list* that maps every record id to its current
leaf. One scan of a sorted attribute list then evaluates the gini of
every candidate split of *every* leaf of the current level
simultaneously. The class list is the scalability bottleneck the paper
notes ("a memory-resident data structure ... which limits the number of
input records it can handle") — SPRINT removed it, CLOUDS removed the
full sort.

Exact algorithm, in-core implementation; serves as a second independent
oracle (it must grow the identical tree to `direct`/`sprint` up to split
ties, which the shared total order on splits removes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema

from .direct import StoppingRule
from .gini import best_categorical_split, weighted_gini, gini_from_counts
from .intervals import class_counts
from .splits import CATEGORICAL_SPLIT, NUMERIC_SPLIT, Split, better
from .tree import DecisionTree, TreeNode

__all__ = ["SliqBuilder"]


@dataclass
class _SortedAttribute:
    """One presorted attribute list: values ascending, with the record
    id of each entry (SLIQ's attribute list)."""

    values: np.ndarray
    rids: np.ndarray


class SliqBuilder:
    """Exact breadth-first induction with presorting and a class list."""

    def __init__(
        self,
        schema: Schema,
        stopping: StoppingRule | None = None,
        enumerate_limit: int = 10,
    ) -> None:
        self.schema = schema
        self.stopping = stopping or StoppingRule()
        self.enumerate_limit = enumerate_limit

    def fit(self, columns: dict[str, np.ndarray], labels: np.ndarray) -> DecisionTree:
        n = len(labels)
        labels = np.asarray(labels, dtype=np.int64)
        # one-time presorting (SLIQ's whole point)
        sorted_attrs = {
            a.name: self._presort(columns[a.name]) for a in self.schema.numeric
        }

        root = TreeNode(
            node_id=0, depth=0, class_counts=class_counts(labels, self.schema.n_classes)
        )
        # the class list: record id -> current leaf
        leaf_of = np.zeros(n, dtype=np.int64)
        leaves: dict[int, TreeNode] = {0: root}
        next_id = 1

        depth = 0
        while True:
            growable = {
                leaf_id: node
                for leaf_id, node in leaves.items()
                if node.depth == depth
                and not self.stopping.is_leaf(node.class_counts, node.depth)
            }
            if not growable:
                break
            best = self._level_splits(
                growable, sorted_attrs, columns, labels, leaf_of
            )
            new_leaves: dict[int, TreeNode] = {}
            for leaf_id, node in leaves.items():
                split = best.get(leaf_id)
                if split is None or split.gini >= float(
                    gini_from_counts(node.class_counts)
                ):
                    new_leaves[leaf_id] = node
                    continue
                rows = np.flatnonzero(leaf_of == leaf_id)
                mask = split.goes_left(np.asarray(columns[split.attribute])[rows])
                if not mask.any() or mask.all():
                    new_leaves[leaf_id] = node
                    continue
                node.split = split
                left = TreeNode(
                    node_id=next_id,
                    depth=node.depth + 1,
                    class_counts=class_counts(
                        labels[rows[mask]], self.schema.n_classes
                    ),
                )
                right = TreeNode(
                    node_id=next_id + 1,
                    depth=node.depth + 1,
                    class_counts=node.class_counts - left.class_counts,
                )
                node.left, node.right = left, right
                # update the class list (SLIQ's in-place leaf relabelling)
                leaf_of[rows[mask]] = next_id
                leaf_of[rows[~mask]] = next_id + 1
                new_leaves[next_id] = left
                new_leaves[next_id + 1] = right
                next_id += 2
            leaves = new_leaves
            depth += 1
        return DecisionTree(root=root, schema=self.schema, meta={"builder": "sliq"})

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _presort(values: np.ndarray) -> _SortedAttribute:
        values = np.asarray(values, dtype=np.float64)
        order = np.argsort(values, kind="stable")
        return _SortedAttribute(values=values[order], rids=order)

    def _level_splits(
        self,
        growable: dict[int, TreeNode],
        sorted_attrs: dict[str, _SortedAttribute],
        columns: dict[str, np.ndarray],
        labels: np.ndarray,
        leaf_of: np.ndarray,
    ) -> dict[int, Split]:
        """One scan per attribute evaluates every growable leaf at once —
        SLIQ's simultaneous split evaluation."""
        c = self.schema.n_classes
        best: dict[int, Split] = {}
        leaf_ids = sorted(growable)
        index_of = {leaf_id: i for i, leaf_id in enumerate(leaf_ids)}
        totals = np.stack([growable[l].class_counts for l in leaf_ids]).astype(
            np.float64
        )

        for a in self.schema.numeric:
            sa = sorted_attrs[a.name]
            owner = leaf_of[sa.rids]
            # one scan of the sorted list serves every growable leaf: the
            # list stays globally sorted, so each leaf's subsequence is
            # its records in ascending order already — no re-sorting
            for leaf_id in leaf_ids:
                idx = np.flatnonzero(owner == leaf_id)
                if len(idx) < 2:
                    continue
                vals = sa.values[idx]
                labs = labels[sa.rids[idx]]
                onehot = np.zeros((len(vals), c))
                onehot[np.arange(len(vals)), labs] = 1.0
                cum = np.cumsum(onehot, axis=0)
                pos = np.flatnonzero(vals[:-1] != vals[1:])
                if pos.size == 0:
                    continue
                total = totals[index_of[leaf_id]]
                ginis = weighted_gini(cum[pos], total[None, :] - cum[pos])
                k = int(np.argmin(ginis))
                cand = Split(
                    attribute=a.name,
                    kind=NUMERIC_SPLIT,
                    gini=float(np.atleast_1d(ginis)[k]),
                    threshold=float(vals[pos[k]]),
                )
                best[leaf_id] = better(best.get(leaf_id), cand)

        for a in self.schema.categorical:
            codes = np.asarray(columns[a.name], dtype=np.int64)
            for leaf_id in leaf_ids:
                rows_mask = leaf_of == leaf_id
                matrix = np.bincount(
                    codes[rows_mask] * c + labels[rows_mask],
                    minlength=a.cardinality * c,
                ).reshape(a.cardinality, c)
                res = best_categorical_split(matrix, self.enumerate_limit)
                if res is not None:
                    cand = Split(
                        attribute=a.name,
                        kind=CATEGORICAL_SPLIT,
                        gini=res[0],
                        left_codes=res[1],
                    )
                    best[leaf_id] = better(best.get(leaf_id), cand)
        return best
