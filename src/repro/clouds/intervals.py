"""Interval construction and histogramming for the SS/SSE methods.

CLOUDS divides each numeric attribute's range into ``q`` intervals holding
approximately equal numbers of points, using boundaries estimated from a
pre-drawn random sample (Section 4.1.1). A record with value ``v`` falls
in interval ``i`` iff ``b_{i-1} < v <= b_i`` (``b_0 = -inf``,
``b_q = +inf``), so the split "``x <= b_i``" keeps intervals ``0..i`` on
the left.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "boundaries_from_sample",
    "interval_index",
    "interval_histogram",
    "class_counts",
    "categorical_count_matrix",
    "scale_q",
]


def boundaries_from_sample(sample: np.ndarray, q: int) -> np.ndarray:
    """Equal-frequency interval boundaries estimated from a sample.

    Returns at most ``q-1`` strictly increasing boundary values (fewer
    when the sample has few distinct values). An empty or constant sample
    yields no boundaries (one interval covering everything).
    """
    if q < 1:
        raise ValueError(f"need at least one interval, got q={q}")
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0 or q == 1:
        return np.empty(0, dtype=np.float64)
    probs = np.arange(1, q) / q
    # order statistics of the sample (not interpolated values), so every
    # boundary is a realisable splitting point of the data
    bounds = np.quantile(sample, probs, method="lower")
    return np.unique(bounds)


def interval_index(values: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Interval number of each value (0..len(boundaries)); values equal to
    a boundary land in the interval to its left."""
    return np.searchsorted(boundaries, np.asarray(values), side="left")


def interval_histogram(
    values: np.ndarray,
    labels: np.ndarray,
    boundaries: np.ndarray,
    n_classes: int,
) -> np.ndarray:
    """(n_intervals, n_classes) class-frequency histogram of one column.

    This is the per-interval statistics vector the replication method
    keeps per attribute per processor; local histograms from data chunks
    simply add.
    """
    q = len(boundaries) + 1
    idx = interval_index(values, boundaries)
    flat = np.bincount(
        idx.astype(np.int64) * n_classes + np.asarray(labels, dtype=np.int64),
        minlength=q * n_classes,
    )
    return flat.reshape(q, n_classes).astype(np.int64)


def class_counts(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Class-frequency vector of a label array."""
    return np.bincount(np.asarray(labels, dtype=np.int64), minlength=n_classes).astype(
        np.int64
    )


def categorical_count_matrix(
    codes: np.ndarray, labels: np.ndarray, cardinality: int, n_classes: int
) -> np.ndarray:
    """(cardinality, n_classes) count matrix of one categorical column."""
    flat = np.bincount(
        np.asarray(codes, dtype=np.int64) * n_classes
        + np.asarray(labels, dtype=np.int64),
        minlength=cardinality * n_classes,
    )
    return flat.reshape(cardinality, n_classes).astype(np.int64)


def scale_q(q_root: int, n_node: int, n_root: int, q_min: int = 2) -> int:
    """Number of intervals for a node of ``n_node`` records.

    The paper notes "the value of q decreases as the node size decreases
    (as in CLOUDS)"; scaling q proportionally to node size keeps the
    expected interval population constant."""
    if n_root <= 0:
        return q_min
    return max(q_min, int(round(q_root * (n_node / n_root))))
