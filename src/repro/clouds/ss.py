"""The SS method: sampling the splitting points (Section 4.1.1).

Gini indices are evaluated only at the interval boundaries of every
numeric attribute (plus all categorical splits); the best of those is the
node's splitter. One pass over the data suffices — the pass that built
the :class:`~repro.clouds.nodestats.NodeStats`.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Schema

from .gini import best_categorical_split, boundary_sweep
from .nodestats import NodeStats
from .splits import CATEGORICAL_SPLIT, NUMERIC_SPLIT, Split, better

__all__ = ["find_split_ss", "best_boundary_split", "best_categorical_splits"]


def best_boundary_split(name: str, stats: NodeStats) -> Split | None:
    """Best interval-boundary split of one numeric attribute."""
    ns = stats.numeric[name]
    if ns.boundaries.size == 0:
        return None
    cum = ns.cumulative()
    # skip degenerate boundaries (everything on one side)
    sizes = cum.sum(axis=1)
    valid = (sizes > 0) & (sizes < stats.n)
    if not valid.any():
        return None
    ginis = boundary_sweep(cum, stats.total)
    ginis = np.where(valid, ginis, np.inf)
    k = int(np.argmin(ginis))
    return Split(
        attribute=name,
        kind=NUMERIC_SPLIT,
        gini=float(ginis[k]),
        threshold=float(ns.boundaries[k]),
    )


def best_categorical_splits(
    stats: NodeStats, schema: Schema, enumerate_limit: int = 10
) -> Split | None:
    """Best subset split across all categorical attributes."""
    best: Split | None = None
    for a in schema.categorical:
        res = best_categorical_split(stats.categorical[a.name], enumerate_limit)
        if res is None:
            continue
        g, left = res
        best = better(
            best,
            Split(attribute=a.name, kind=CATEGORICAL_SPLIT, gini=g, left_codes=left),
        )
    return best


def find_split_ss(
    stats: NodeStats, schema: Schema, enumerate_limit: int = 10
) -> Split | None:
    """gini_min over categorical splits and numeric interval boundaries."""
    best = best_categorical_splits(stats, schema, enumerate_limit)
    for a in schema.numeric:
        best = better(best, best_boundary_split(a.name, stats))
    return best
