"""Decision-tree structure shared by every builder in the package."""

from __future__ import annotations

import contextlib
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.data.schema import LABEL_DTYPE, Schema

from .splits import CATEGORICAL_SPLIT, NUMERIC_SPLIT, Split

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve import CompiledTree


@dataclass
class TreeNode:
    """One node; internal when ``split`` is set, else a leaf.

    ``class_counts`` are the training-set counts that reached the node;
    ``label`` the majority class (ties to the lowest code).
    """

    node_id: int
    depth: int
    class_counts: np.ndarray
    split: Split | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def n(self) -> int:
        return int(self.class_counts.sum())

    @property
    def label(self) -> int:
        return int(np.argmax(self.class_counts))

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    @property
    def errors(self) -> int:
        """Training records at this node not of the majority class."""
        return self.n - int(self.class_counts.max()) if self.n else 0

    def to_leaf(self) -> None:
        """Collapse the subtree (pruning)."""
        self.split = None
        self.left = None
        self.right = None


@dataclass
class DecisionTree:
    """A fitted classifier: a root node plus its schema."""

    root: TreeNode
    schema: Schema
    meta: dict = field(default_factory=dict)

    # -- structure ----------------------------------------------------------
    def iter_nodes(self) -> Iterator[TreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    @property
    def n_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    @property
    def n_leaves(self) -> int:
        return sum(1 for n in self.iter_nodes() if n.is_leaf)

    @property
    def depth(self) -> int:
        return max(n.depth for n in self.iter_nodes())

    # -- inference ----------------------------------------------------------
    def predict(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorised prediction for a column dict.

        Routing walks the tree with an explicit work stack (never Python
        recursion), so trees of any depth — including degenerate chains
        deeper than ``sys.getrecursionlimit()`` — predict fine. This is
        the *reference* read path; :meth:`compile` produces the flat-array
        engine that must match it bit for bit.
        """
        n = len(next(iter(columns.values()))) if columns else 0
        out = np.empty(n, dtype=LABEL_DTYPE)
        stack: list[tuple[TreeNode, np.ndarray]] = [(self.root, np.arange(n))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                out[rows] = node.label
                continue
            mask = node.split.goes_left(columns[node.split.attribute][rows])
            stack.append((node.right, rows[~mask]))
            stack.append((node.left, rows[mask]))
        return out

    def compile(self) -> "CompiledTree":
        """Flatten into a :class:`repro.serve.CompiledTree` — node-major
        numpy tables evaluated levelwise for batched serving."""
        from repro.serve import compile_tree

        return compile_tree(self)

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation (for logging / cross-process
        assembly). Carries ``meta`` so :meth:`save`/:meth:`load` round-trip
        provenance; compare ``["root"]`` when checking structural identity
        across differently-provenanced runs."""
        return {
            "root": encode_node(self.root),
            "n_classes": self.schema.n_classes,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict, schema: Schema) -> "DecisionTree":
        stored = data.get("n_classes")
        if stored is not None and int(stored) != schema.n_classes:
            raise ValueError(
                f"stored tree has n_classes={stored} but schema expects "
                f"{schema.n_classes}; class_counts comparisons would be "
                "mis-shaped — load with the schema the tree was fitted on"
            )
        return cls(
            root=decode_node(data["root"]),
            schema=schema,
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: str) -> None:
        """Write the tree as JSON (the wire format of :meth:`to_dict`)."""
        import json

        payload = self.to_dict()
        # the C json encoder recurses once per nesting level; give it
        # headroom proportional to the tree depth so degenerate chains
        # deeper than the interpreter limit still serialise
        with _recursion_headroom(2 * self.depth + 64):
            text = json.dumps(payload)
        with open(path, "w") as fh:
            fh.write(text)

    @classmethod
    def load(cls, path: str, schema: Schema) -> "DecisionTree":
        """Read a tree written by :meth:`save`."""
        import json

        with open(path) as fh:
            text = fh.read()
        try:
            data = json.loads(text)
        except RecursionError:
            with _recursion_headroom(2 * _json_nesting_depth(text) + 64):
                data = json.loads(text)
        return cls.from_dict(data, schema)

    def describe(self, max_depth: int | None = None) -> str:
        """Human-readable sketch of the tree (preorder, left before
        right), via an explicit stack so depth is unbounded."""
        lines: list[str] = []
        stack: list[tuple[TreeNode, int]] = [(self.root, 0)]
        while stack:
            node, indent = stack.pop()
            pad = "  " * indent
            if max_depth is not None and node.depth > max_depth:
                lines.append(f"{pad}...")
                continue
            if node.is_leaf:
                lines.append(f"{pad}leaf label={node.label} n={node.n}")
            else:
                lines.append(f"{pad}{node.split.describe()} (n={node.n})")
                stack.append((node.right, indent + 1))
                stack.append((node.left, indent + 1))
        return "\n".join(lines)


@contextlib.contextmanager
def _recursion_headroom(depth: int):
    """Temporarily raise the interpreter recursion limit to at least
    ``depth`` (the json module's C encoder/scanner charge one level per
    nesting level even though they never grow the Python stack)."""
    limit = sys.getrecursionlimit()
    if depth <= limit:
        yield
        return
    sys.setrecursionlimit(depth)
    try:
        yield
    finally:
        sys.setrecursionlimit(limit)


def _json_nesting_depth(text: str) -> int:
    """Maximum bracket nesting of a JSON document (string-literal aware);
    linear scan used to size the recursion headroom when loading trees of
    unknown depth."""
    depth = max_depth = 0
    in_string = escaped = False
    for ch in text:
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
        elif ch in "{[":
            depth += 1
            if depth > max_depth:
                max_depth = depth
        elif ch in "}]":
            depth -= 1
    return max_depth


def encode_node(node: TreeNode) -> dict:
    """JSON-serialisable encoding of one subtree (the wire format the
    parallel small-node phase ships subtrees with). Iterative — an
    explicit stack fills child dicts in place — so arbitrarily deep
    subtrees encode without hitting the recursion limit."""
    out: dict = {}
    stack: list[tuple[TreeNode, dict]] = [(node, out)]
    while stack:
        n, d = stack.pop()
        d["node_id"] = n.node_id
        d["depth"] = n.depth
        d["class_counts"] = n.class_counts.tolist()
        if not n.is_leaf:
            s = n.split
            d["split"] = {
                "attribute": s.attribute,
                "kind": s.kind,
                "gini": s.gini,
                "threshold": s.threshold,
                "left_codes": sorted(s.left_codes) if s.left_codes else None,
            }
            d["left"] = left = {}
            d["right"] = right = {}
            stack.append((n.right, right))
            stack.append((n.left, left))
    return out


def decode_node(d: dict) -> TreeNode:
    """Inverse of :func:`encode_node` (likewise iterative)."""

    def make(dd: dict) -> TreeNode:
        return TreeNode(
            node_id=dd["node_id"],
            depth=dd["depth"],
            class_counts=np.asarray(dd["class_counts"], dtype=np.int64),
        )

    root = make(d)
    stack: list[tuple[dict, TreeNode]] = [(d, root)]
    while stack:
        dd, node = stack.pop()
        if "split" not in dd:
            continue
        s = dd["split"]
        node.split = Split(
            attribute=s["attribute"],
            kind=s["kind"],
            gini=s["gini"],
            threshold=s["threshold"],
            left_codes=(frozenset(s["left_codes"]) if s["left_codes"] else None),
        )
        node.left = make(dd["left"])
        node.right = make(dd["right"])
        stack.append((dd["right"], node.right))
        stack.append((dd["left"], node.left))
    return root


def validate_tree(tree: DecisionTree) -> None:
    """Structural invariants used by tests and asserted after parallel
    assembly: child counts sum to the parent's, depths increase by one,
    node ids are unique, splits reference schema attributes."""
    seen: set[int] = set()
    for node in tree.iter_nodes():
        if node.node_id in seen:
            raise AssertionError(f"duplicate node id {node.node_id}")
        seen.add(node.node_id)
        if node.is_leaf:
            continue
        if node.left is None or node.right is None:
            raise AssertionError(f"internal node {node.node_id} missing children")
        if node.left.depth != node.depth + 1 or node.right.depth != node.depth + 1:
            raise AssertionError(f"bad child depth under node {node.node_id}")
        if not np.array_equal(
            node.left.class_counts + node.right.class_counts, node.class_counts
        ):
            raise AssertionError(f"child counts do not sum at node {node.node_id}")
        attr = tree.schema.attribute(node.split.attribute)
        expected = NUMERIC_SPLIT if attr.is_numeric else CATEGORICAL_SPLIT
        if node.split.kind != expected:
            raise AssertionError(
                f"split kind {node.split.kind} does not match attribute "
                f"{attr.name} at node {node.node_id}"
            )
