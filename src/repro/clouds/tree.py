"""Decision-tree structure shared by every builder in the package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.schema import LABEL_DTYPE, Schema

from .splits import CATEGORICAL_SPLIT, NUMERIC_SPLIT, Split


@dataclass
class TreeNode:
    """One node; internal when ``split`` is set, else a leaf.

    ``class_counts`` are the training-set counts that reached the node;
    ``label`` the majority class (ties to the lowest code).
    """

    node_id: int
    depth: int
    class_counts: np.ndarray
    split: Split | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def n(self) -> int:
        return int(self.class_counts.sum())

    @property
    def label(self) -> int:
        return int(np.argmax(self.class_counts))

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    @property
    def errors(self) -> int:
        """Training records at this node not of the majority class."""
        return self.n - int(self.class_counts.max()) if self.n else 0

    def to_leaf(self) -> None:
        """Collapse the subtree (pruning)."""
        self.split = None
        self.left = None
        self.right = None


@dataclass
class DecisionTree:
    """A fitted classifier: a root node plus its schema."""

    root: TreeNode
    schema: Schema
    meta: dict = field(default_factory=dict)

    # -- structure ----------------------------------------------------------
    def iter_nodes(self) -> Iterator[TreeNode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    @property
    def n_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    @property
    def n_leaves(self) -> int:
        return sum(1 for n in self.iter_nodes() if n.is_leaf)

    @property
    def depth(self) -> int:
        return max(n.depth for n in self.iter_nodes())

    # -- inference ----------------------------------------------------------
    def predict(self, columns: dict[str, np.ndarray]) -> np.ndarray:
        """Vectorised prediction for a column dict."""
        n = len(next(iter(columns.values()))) if columns else 0
        out = np.empty(n, dtype=LABEL_DTYPE)
        idx = np.arange(n)

        def route(node: TreeNode, rows: np.ndarray) -> None:
            if rows.size == 0:
                return
            if node.is_leaf:
                out[rows] = node.label
                return
            mask = node.split.goes_left(columns[node.split.attribute][rows])
            route(node.left, rows[mask])
            route(node.right, rows[~mask])

        route(self.root, idx)
        return out

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation (for logging / cross-process
        assembly)."""
        return {"root": encode_node(self.root), "n_classes": self.schema.n_classes}

    @classmethod
    def from_dict(cls, data: dict, schema: Schema) -> "DecisionTree":
        return cls(root=decode_node(data["root"]), schema=schema)

    def save(self, path: str) -> None:
        """Write the tree as JSON (the wire format of :meth:`to_dict`)."""
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)

    @classmethod
    def load(cls, path: str, schema: Schema) -> "DecisionTree":
        """Read a tree written by :meth:`save`."""
        import json

        with open(path) as fh:
            return cls.from_dict(json.load(fh), schema)

    def describe(self, max_depth: int | None = None) -> str:
        """Human-readable sketch of the tree."""
        lines: list[str] = []

        def walk(node: TreeNode, indent: int) -> None:
            pad = "  " * indent
            if max_depth is not None and node.depth > max_depth:
                lines.append(f"{pad}...")
                return
            if node.is_leaf:
                lines.append(f"{pad}leaf label={node.label} n={node.n}")
            else:
                lines.append(f"{pad}{node.split.describe()} (n={node.n})")
                walk(node.left, indent + 1)
                walk(node.right, indent + 1)

        walk(self.root, 0)
        return "\n".join(lines)


def encode_node(node: TreeNode) -> dict:
    """JSON-serialisable encoding of one subtree (the wire format the
    parallel small-node phase ships subtrees with)."""
    d: dict = {
        "node_id": node.node_id,
        "depth": node.depth,
        "class_counts": node.class_counts.tolist(),
    }
    if not node.is_leaf:
        s = node.split
        d["split"] = {
            "attribute": s.attribute,
            "kind": s.kind,
            "gini": s.gini,
            "threshold": s.threshold,
            "left_codes": sorted(s.left_codes) if s.left_codes else None,
        }
        d["left"] = encode_node(node.left)
        d["right"] = encode_node(node.right)
    return d


def decode_node(d: dict) -> TreeNode:
    """Inverse of :func:`encode_node`."""
    node = TreeNode(
        node_id=d["node_id"],
        depth=d["depth"],
        class_counts=np.asarray(d["class_counts"], dtype=np.int64),
    )
    if "split" in d:
        s = d["split"]
        node.split = Split(
            attribute=s["attribute"],
            kind=s["kind"],
            gini=s["gini"],
            threshold=s["threshold"],
            left_codes=(frozenset(s["left_codes"]) if s["left_codes"] else None),
        )
        node.left = decode_node(d["left"])
        node.right = decode_node(d["right"])
    return node


def validate_tree(tree: DecisionTree) -> None:
    """Structural invariants used by tests and asserted after parallel
    assembly: child counts sum to the parent's, depths increase by one,
    node ids are unique, splits reference schema attributes."""
    seen: set[int] = set()
    for node in tree.iter_nodes():
        if node.node_id in seen:
            raise AssertionError(f"duplicate node id {node.node_id}")
        seen.add(node.node_id)
        if node.is_leaf:
            continue
        if node.left is None or node.right is None:
            raise AssertionError(f"internal node {node.node_id} missing children")
        if node.left.depth != node.depth + 1 or node.right.depth != node.depth + 1:
            raise AssertionError(f"bad child depth under node {node.node_id}")
        if not np.array_equal(
            node.left.class_counts + node.right.class_counts, node.class_counts
        ):
            raise AssertionError(f"child counts do not sum at node {node.node_id}")
        attr = tree.schema.attribute(node.split.attribute)
        expected = NUMERIC_SPLIT if attr.is_numeric else CATEGORICAL_SPLIT
        if node.split.kind != expected:
            raise AssertionError(
                f"split kind {node.split.kind} does not match attribute "
                f"{attr.name} at node {node.node_id}"
            )
