"""Sequential CLOUDS: the base classifier pCLOUDS parallelises.

Two execution paths share the same split-finding code:

* :meth:`CloudsBuilder.fit_arrays` — in-core, for datasets that fit in
  memory (also the reference implementation for accuracy comparisons);
* :meth:`CloudsBuilder.fit_columnset` — out-of-core, streaming a
  disk-resident :class:`~repro.ooc.columnset.ColumnSet` in batches: one
  statistics pass per node (SS), an optional alive-interval pass (SSE),
  and one partitioning pass that writes the children and tallies their
  class counts so no extra counting pass is needed (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.data.schema import Schema
from repro.ooc.columnset import ColumnSet

from .direct import StoppingRule, build_subtree_direct, _subtree_size
from .gini import gini_from_counts
from .intervals import boundaries_from_sample, class_counts, scale_q
from .nodestats import NodeStats, accumulate_batch, empty_stats
from .splits import Split
from .ss import find_split_ss
from .sse import (
    determine_alive_intervals,
    evaluate_alive_interval,
    member_mask,
    refine_with_alive,
    stacked_member_masks,
)
from .tree import DecisionTree, TreeNode

__all__ = ["CloudsConfig", "CloudsBuilder", "draw_sample"]


class CostSink(Protocol):
    """Anything that can absorb simulated compute charges (a
    :class:`repro.cluster.machine.RankContext` qualifies)."""

    def charge_compute(self, ops: float = 0.0, seconds: float = 0.0) -> None: ...

    def charge_sort(self, n: int) -> None: ...


class _NullSink:
    def charge_compute(self, ops: float = 0.0, seconds: float = 0.0) -> None:
        pass

    def charge_sort(self, n: int) -> None:
        pass


@dataclass(frozen=True)
class CloudsConfig:
    """Knobs of the CLOUDS family.

    ``q_root`` — intervals per numeric attribute at the root (the paper's
    experiments used 10,000 for millions of records; q scales down with
    node size). ``q_min`` — below this many intervals a node is processed
    with the exact direct method. ``sample_size`` — the pre-drawn random
    sample used to place interval boundaries.
    """

    method: str = "sse"  # 'ss' | 'sse'
    q_root: int = 200
    sample_size: int = 2000
    q_min: int = 10
    min_node: int = 2
    max_depth: int | None = None
    purity: float = 1.0
    enumerate_limit: int = 10
    batch_rows: int = 8192

    def __post_init__(self) -> None:
        if self.method not in ("ss", "sse"):
            raise ValueError(f"method must be 'ss' or 'sse', got {self.method!r}")
        if self.q_root < 2:
            raise ValueError("q_root must be at least 2")
        if self.sample_size < 1:
            raise ValueError("sample_size must be positive")

    def stopping(self) -> StoppingRule:
        return StoppingRule(
            min_node=self.min_node, max_depth=self.max_depth, purity=self.purity
        )


def draw_sample(
    cs: ColumnSet, size: int, rng: np.random.Generator
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Draw the pre-drawn random sample of CLOUDS from a disk-resident
    fragment in one streaming pass.

    Row count is file metadata, so we can pick ``size`` uniform row
    indices up front and collect them during a single scan.
    """
    n = cs.nrows
    size = min(size, n)
    want = np.sort(rng.choice(n, size=size, replace=False)) if size else np.empty(
        0, dtype=np.int64
    )
    picked_cols: dict[str, list[np.ndarray]] = {}
    picked_labels: list[np.ndarray] = []
    base = 0
    for batch, labels in cs.iter_batches():
        nb = len(labels)
        local = want[(want >= base) & (want < base + nb)] - base
        if len(local):
            if not picked_cols:
                picked_cols = {k: [] for k in batch}
            for k in batch:
                picked_cols[k].append(batch[k][local])
            picked_labels.append(labels[local])
        base += nb
    if not picked_labels:
        empty_cols = {a.name: np.empty(0, dtype=a.dtype) for a in cs.schema}
        return empty_cols, np.empty(0, dtype=np.int64)
    return (
        {k: np.concatenate(v) for k, v in picked_cols.items()},
        np.concatenate(picked_labels),
    )


def node_boundaries(
    schema: Schema,
    sample_cols: dict[str, np.ndarray],
    q: int,
) -> dict[str, np.ndarray]:
    """Interval boundaries for every numeric attribute from the node's
    sample fragment."""
    return {
        a.name: boundaries_from_sample(sample_cols[a.name], q)
        for a in schema.numeric
    }


def find_split_from_arrays(
    schema: Schema,
    columns: dict[str, np.ndarray],
    labels: np.ndarray,
    boundaries: dict[str, np.ndarray],
    config: CloudsConfig,
    sink: CostSink | None = None,
) -> tuple[Split | None, NodeStats, float]:
    """SS/SSE split search on an in-memory fragment.

    Returns ``(split, stats, survival_ratio)``; the survival ratio is 0
    for the SS method.
    """
    sink = sink or _NullSink()
    stats = empty_stats(schema, boundaries)
    accumulate_batch(stats, schema, columns, labels)
    sink.charge_compute(ops=len(labels) * len(schema))
    best = find_split_ss(stats, schema, config.enumerate_limit)
    q_total = sum(ns.n_intervals for ns in stats.numeric.values())
    sink.charge_compute(ops=q_total * schema.n_classes)
    if config.method == "ss" or best is None:
        return best, stats, 0.0
    alive = determine_alive_intervals(stats, schema, best.gini)
    sink.charge_compute(ops=q_total * schema.n_classes * (2**schema.n_classes))
    results = []
    surviving = 0
    for iv in alive:
        mask = member_mask(columns[iv.attribute], iv)
        vals = columns[iv.attribute][mask]
        surviving += len(vals)
        sink.charge_sort(len(vals))
        results.append(
            evaluate_alive_interval(
                iv, vals, labels[mask], stats.total, schema.n_classes
            )
        )
    ratio = surviving / max(stats.n, 1)
    return refine_with_alive(best, results), stats, ratio


class CloudsBuilder:
    """Sequential CLOUDS classifier."""

    def __init__(self, schema: Schema, config: CloudsConfig | None = None) -> None:
        self.schema = schema
        self.config = config or CloudsConfig()

    # -- in-core path ----------------------------------------------------------
    def fit_arrays(
        self,
        columns: dict[str, np.ndarray],
        labels: np.ndarray,
        seed: int = 0,
        sink: CostSink | None = None,
    ) -> DecisionTree:
        """Fit on in-memory columns."""
        rng = np.random.default_rng(seed)
        n_root = len(labels)
        size = min(self.config.sample_size, n_root)
        sample_idx = (
            rng.choice(n_root, size=size, replace=False)
            if n_root
            else np.empty(0, dtype=np.int64)
        )
        sample_cols = {k: v[sample_idx] for k, v in columns.items()}
        self._next_id = 0
        root = self._build_in_core(
            columns, labels, sample_cols, n_root, depth=0, sink=sink or _NullSink()
        )
        return DecisionTree(
            root=root,
            schema=self.schema,
            meta={"builder": f"clouds-{self.config.method}"},
        )

    def _alloc_id(self) -> int:
        nid = self._next_id
        self._next_id += 1
        return nid

    def _build_in_core(
        self,
        columns: dict[str, np.ndarray],
        labels: np.ndarray,
        sample_cols: dict[str, np.ndarray],
        n_root: int,
        depth: int,
        sink: CostSink,
    ) -> TreeNode:
        cfg = self.config
        counts = class_counts(labels, self.schema.n_classes)
        node = TreeNode(node_id=self._alloc_id(), depth=depth, class_counts=counts)
        if cfg.stopping().is_leaf(counts, depth):
            return node
        q = scale_q(cfg.q_root, len(labels), n_root)
        if q < cfg.q_min:
            # small node: exact direct method
            sub = build_subtree_direct(
                self.schema,
                columns,
                labels,
                cfg.stopping(),
                depth=depth,
                next_id=node.node_id,
                enumerate_limit=cfg.enumerate_limit,
                on_node=lambda n: sink.charge_sort(n * len(self.schema.numeric)),
            )
            self._next_id = node.node_id + _subtree_size(sub)
            return sub
        bounds = node_boundaries(self.schema, sample_cols, q)
        split, stats, _ = find_split_from_arrays(
            self.schema, columns, labels, bounds, cfg, sink
        )
        if split is None or split.gini >= float(gini_from_counts(counts)):
            return node
        mask = split.goes_left(columns[split.attribute])
        n_left = int(mask.sum())
        if n_left == 0 or n_left == len(labels):
            return node
        sink.charge_compute(ops=len(labels) * len(self.schema))
        smask = split.goes_left(sample_cols[split.attribute])
        node.split = split
        node.left = self._build_in_core(
            {k: v[mask] for k, v in columns.items()},
            labels[mask],
            {k: v[smask] for k, v in sample_cols.items()},
            n_root,
            depth + 1,
            sink,
        )
        node.right = self._build_in_core(
            {k: v[~mask] for k, v in columns.items()},
            labels[~mask],
            {k: v[~smask] for k, v in sample_cols.items()},
            n_root,
            depth + 1,
            sink,
        )
        return node

    # -- out-of-core path -------------------------------------------------------
    def fit_columnset(
        self,
        cs: ColumnSet,
        seed: int = 0,
        sink: CostSink | None = None,
    ) -> DecisionTree:
        """Fit on a disk-resident fragment, streaming batch-wise.

        The node's fragment is deleted once its children are written, so
        peak disk usage stays ~2x the training set.
        """
        sink = sink or _NullSink()
        rng = np.random.default_rng(seed)
        cfg = self.config
        n_root = cs.nrows
        sample_cols, sample_labels = draw_sample(
            cs, min(cfg.sample_size, max(n_root, 1)), rng
        )
        self._next_id = 0
        root = self._build_ooc(cs, sample_cols, None, n_root, depth=0, sink=sink)
        return DecisionTree(
            root=root,
            schema=self.schema,
            meta={"builder": f"clouds-{cfg.method}-ooc"},
        )

    def _node_stats_pass(
        self,
        cs: ColumnSet,
        boundaries: dict[str, np.ndarray],
        sink: CostSink,
    ) -> NodeStats:
        stats = empty_stats(self.schema, boundaries)
        for batch, labels in cs.iter_batches():
            accumulate_batch(stats, self.schema, batch, labels)
            sink.charge_compute(ops=len(labels) * len(self.schema))
        return stats

    def _alive_pass(
        self,
        cs: ColumnSet,
        alive,
        stats: NodeStats,
        sink: CostSink,
    ) -> list[Split | None]:
        """Second pass of SSE: gather each alive interval's members (the
        paper assumes each alive interval fits in memory) and evaluate."""
        if not alive:
            return []
        needed = sorted({iv.attribute for iv in alive})
        members: dict[int, tuple[list, list]] = {i: ([], []) for i in range(len(alive))}
        for name in needed:
            ks = [k for k, iv in enumerate(alive) if iv.attribute == name]
            ivs = [alive[k] for k in ks]
            for values, labels in cs.iter_column_with_labels(name):
                sink.charge_compute(ops=len(values) * len(ivs))
                for k, m in zip(ks, stacked_member_masks(values, ivs)):
                    if m.any():
                        members[k][0].append(values[m])
                        members[k][1].append(labels[m])
        results: list[Split | None] = []
        for k, iv in enumerate(alive):
            vals_list, labs_list = members[k]
            if not vals_list:
                results.append(None)
                continue
            vals = np.concatenate(vals_list)
            labs = np.concatenate(labs_list)
            sink.charge_sort(len(vals))
            results.append(
                evaluate_alive_interval(
                    iv, vals, labs, stats.total, self.schema.n_classes
                )
            )
        return results

    def _partition_pass(
        self,
        cs: ColumnSet,
        split: Split,
        sink: CostSink,
        name: str,
    ) -> tuple[ColumnSet, ColumnSet, np.ndarray]:
        """Stream the fragment once, writing both children (read + write
        of every attribute, as the paper's cost analysis states) and
        tallying the left child's class counts on the way — partitioning
        updates the frequencies so no extra counting pass is needed."""
        left = ColumnSet(cs.disk, self.schema, name=f"{name}/L")
        right = ColumnSet(cs.disk, self.schema, name=f"{name}/R")
        left_counts = np.zeros(self.schema.n_classes, dtype=np.int64)
        for batch, labels in cs.iter_batches():
            mask = split.goes_left(batch[split.attribute])
            sink.charge_compute(ops=len(labels) * len(self.schema))
            left.append_batch({k: v[mask] for k, v in batch.items()}, labels[mask])
            right.append_batch(
                {k: v[~mask] for k, v in batch.items()}, labels[~mask]
            )
            left_counts += class_counts(labels[mask], self.schema.n_classes)
        return left, right, left_counts

    def _build_ooc(
        self,
        cs: ColumnSet,
        sample_cols: dict[str, np.ndarray],
        counts: np.ndarray | None,
        n_root: int,
        depth: int,
        sink: CostSink,
    ) -> TreeNode:
        cfg = self.config
        if counts is None:
            counts = class_counts(cs.read_labels(), self.schema.n_classes)
        node = TreeNode(node_id=self._alloc_id(), depth=depth, class_counts=counts)
        if cfg.stopping().is_leaf(counts, depth):
            cs.delete()
            return node
        q = scale_q(cfg.q_root, cs.nrows, n_root)
        if q < cfg.q_min or cs.nbytes <= 0:
            columns, labels = cs.read_all()
            cs.delete()
            sub = build_subtree_direct(
                self.schema,
                columns,
                labels,
                cfg.stopping(),
                depth=depth,
                next_id=node.node_id,
                enumerate_limit=cfg.enumerate_limit,
                on_node=lambda n: sink.charge_sort(n * len(self.schema.numeric)),
            )
            self._next_id = node.node_id + _subtree_size(sub)
            return sub
        bounds = node_boundaries(self.schema, sample_cols, q)
        # the node is about to be scanned up to three times (stats, SSE
        # members, partition): pin it so a buffer pool that can hold the
        # fragment serves the re-reads from memory; deleting the fragment
        # below invalidates its entries, which also unpins them
        pool = cs.disk.pool
        if pool is not None and pool.would_cache(cs.nbytes):
            pool.pin_columnset(cs)
        stats = self._node_stats_pass(cs, bounds, sink)
        best = find_split_ss(stats, self.schema, cfg.enumerate_limit)
        if cfg.method == "sse" and best is not None:
            alive = determine_alive_intervals(stats, self.schema, best.gini)
            results = self._alive_pass(cs, alive, stats, sink)
            best = refine_with_alive(best, results)
        if best is None or best.gini >= float(gini_from_counts(counts)):
            cs.delete()
            return node
        left_cs, right_cs, left_counts = self._partition_pass(
            cs, best, sink, name=cs.name
        )
        cs.delete()
        if left_cs.nrows == 0 or right_cs.nrows == 0:
            left_cs.delete()
            right_cs.delete()
            return node
        smask = best.goes_left(sample_cols[best.attribute])
        node.split = best
        node.left = self._build_ooc(
            left_cs,
            {k: v[smask] for k, v in sample_cols.items()},
            left_counts,
            n_root,
            depth + 1,
            sink,
        )
        node.right = self._build_ooc(
            right_cs,
            {k: v[~smask] for k, v in sample_cols.items()},
            counts - left_counts,
            n_root,
            depth + 1,
            sink,
        )
        return node
